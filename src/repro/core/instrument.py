"""OSR point insertion (paper Section 3, Figures 5 and 6).

Instruments a base function ``f`` at an arbitrary location ``L`` (any
instruction boundary — one of the paper's novel claims over McOSR's
loop-header restriction):

* the containing block is split at ``L``;
* the condition's code is emitted before the split edge and a conditional
  branch diverts control to a dedicated ``osr`` block when it fires;
* the ``osr`` block tail-calls either the continuation function directly
  (*resolved* OSR, Figure 2) or a freshly built *stub* that invokes a
  code generator at run time and then calls the continuation it produced
  (*open* OSR, Figures 3 and 6).

Instrumentation happens in place (the instrumented ``f`` is the paper's
``f_from``); callers holding an execution engine should let these helpers
invalidate the compiled form so the next call picks up the OSR machinery.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from ..analysis.manager import resolve_manager
from ..ir import types as T
from ..ir.builder import IRBuilder
from ..ir.constexpr import ConstantIntToPtr
from ..ir.function import BasicBlock, Function, Module
from ..ir.instructions import Instruction
from ..ir.types import FunctionType, PointerType
from ..ir.values import Value
from ..ir.verifier import verify_function
from ..obs import events as EV
from ..obs.telemetry import ambient as ambient_telemetry
from ..transform.clone import clone_function
from ..vm.runtime import FunctionHandle
from .conditions import OSRCondition
from .continuation import OSRError, generate_continuation
from .statemap import StateMapping


def _telemetry_for(engine):
    """The telemetry insertion helpers trace to: the engine's if one is
    attached, the ambient telemetry otherwise (engine-less callers)."""
    tel = getattr(engine, "telemetry", None)
    return tel if tel is not None else ambient_telemetry()


def _manager_for(engine, am=None):
    """The analysis manager insertion helpers consult: an explicit one,
    else the engine's, else the process-wide default.  Callers passing
    both an engine and ``am`` should pass the engine's own manager, so
    the invalidation the engine performs hits the same cache."""
    if am is not None:
        return am
    return resolve_manager(getattr(engine, "analysis", None))


def _note_state_size(telemetry, engine, func: Function, kind: str,
                     count: int) -> None:
    """Record the live-state width of a freshly inserted OSR point: an
    ``osr.state_size`` instant on the trace and the ``osr.live_slots``
    gauge on the engine's metrics (when an engine is attached).  This is
    the number the scalarization work is measured by — fewer live slots
    means smaller continuation signatures and slimmer deopt recipes."""
    if telemetry is not None and telemetry.enabled:
        telemetry.event(
            EV.OSR_STATE_SIZE, function=func.name, kind=kind, live=count
        )
    metrics = getattr(engine, "metrics", None)
    if metrics is not None:
        metrics.gauge(EV.OSR_LIVE_SLOTS, count)


def _scalarize_for_osr(func: Function, am) -> None:
    """Run the SROA pass over ``func`` before instrumenting it, with the
    same invalidation discipline the pass manager applies: split
    aggregates shrink the live sets the OSR point is about to capture.

    Callers opting in must pass a ``location`` that survives the rewrite
    (block terminators and arithmetic do; loads/stores/geps on a
    scalarized aggregate are erased, and :func:`split_block_at` rejects
    an erased location)."""
    from ..transform.passmanager import scalarize_pass

    preserved = scalarize_pass(func, am)
    if not preserved.preserves_all:
        am.invalidate(func, preserved)


def _unwrap_ir(obj):
    """Collapse an engine :class:`FunctionHandle` back to its IR function.

    The object table routes interned functions through the engine's
    handle path, so handles baked into stub IR resolve to the callable
    :class:`FunctionHandle`; host-side generators want the IR object.
    """
    if isinstance(obj, FunctionHandle):
        return obj.function
    return obj


class ResolvedOSR:
    """Result of inserting a resolved OSR point."""

    def __init__(self, function: Function, continuation: Function,
                 variant: Function, osr_block: BasicBlock,
                 continuation_block: BasicBlock, live_values: List[Value]):
        self.function = function          #: the instrumented f_from
        self.continuation = continuation  #: f'_to
        self.variant = variant            #: f'
        self.osr_block = osr_block
        self.continuation_block = continuation_block
        self.live_values = live_values


class OpenOSR:
    """Result of inserting an open OSR point."""

    def __init__(self, function: Function, stub: Function,
                 osr_block: BasicBlock, continuation_block: BasicBlock,
                 live_values: List[Value]):
        self.function = function  #: the instrumented f_from
        self.stub = stub          #: f_stub
        self.osr_block = osr_block
        self.continuation_block = continuation_block
        self.live_values = live_values


def split_block_at(location: Instruction) -> BasicBlock:
    """Split the block containing ``location`` so that ``location`` starts
    a new block; returns that new block.

    The original block keeps the instructions before ``location`` (and all
    phis) and falls through with an unconditional branch.  This is a pure
    restructuring — semantics are unchanged.
    """
    block = location.parent
    if block is None:
        raise OSRError("location is not inside a block")
    if location.is_phi:
        raise OSRError("cannot split at a phi; choose the first non-phi")
    func = block.parent
    instructions = block.instructions
    index = instructions.index(location)
    cont = BasicBlock(f"{block.name}.cont")
    func.add_block(cont, after=block)
    for inst in instructions[index:]:
        block.remove(inst)
        cont.append(inst)
    # successors' phis must now name the new block
    for succ in cont.successors():
        for phi in succ.phis:
            phi.replace_incoming_block(block, cont)
    IRBuilder(block).br(cont)
    return cont


def _emit_osr_check(func: Function, check_block: BasicBlock,
                    cont_block: BasicBlock, condition: OSRCondition,
                    ) -> BasicBlock:
    """Emit the condition at the end of ``check_block`` and branch to a
    fresh ``osr`` block when it fires; returns the osr block."""
    condition.prepare(func)
    terminator = check_block.terminator
    builder = IRBuilder().position_before(terminator)
    cond_value = condition.emit(func, builder)
    osr_block = BasicBlock("osr")
    func.add_block(osr_block)
    terminator.erase_from_parent()
    IRBuilder(check_block).cond_br(cond_value, osr_block, cont_block)
    return osr_block


def insert_resolved_osr_point(
    func: Function,
    location: Instruction,
    condition: OSRCondition,
    variant: Optional[Function] = None,
    landing: Optional[BasicBlock] = None,
    mapping: Optional[StateMapping] = None,
    cont_name: Optional[str] = None,
    engine=None,
    verify: bool = True,
    am=None,
    scalarize: bool = False,
) -> ResolvedOSR:
    """Insert a resolved OSR point before ``location`` (Figure 2).

    With no ``variant``, the OSR transfers to a clone of ``func`` (the
    paper's Q2 setup): the clone, landing block and identity state mapping
    are derived automatically.  Otherwise the caller provides the variant
    ``f'``, the landing block ``L'`` and a :class:`StateMapping` covering
    the live-in state of ``L'`` (with compensation code as needed).

    Liveness at ``location`` comes from ``am`` (defaulting to the
    engine's analysis manager, or the process-wide one), so repeated
    insertions against the same function version — and the continuation
    generation below — share one computed result.

    Insertion is traced as an ``osr.insert`` span (kind ``resolved``) on
    the engine's telemetry (ambient when no engine is given), and the
    continuation is tagged ``osr.entrypoint = "resolved"`` so the engine
    can observe fires when it is entered.  With ``scalarize=True`` the
    SROA pass runs first (with pass-manager invalidation discipline), so
    the captured live set reflects post-scalarization liveness; the
    ``location`` must survive the rewrite.  Either way the final live
    width is recorded as an ``osr.state_size`` instant and the
    ``osr.live_slots`` gauge.
    """
    tel = _telemetry_for(engine)
    with tel.span(EV.OSR_INSERT, function=func.name, kind="resolved"):
        if scalarize:
            _scalarize_for_osr(func, _manager_for(engine, am))
        return _insert_resolved_osr_point(
            func, location, condition, variant, landing, mapping,
            cont_name, engine, verify, tel, _manager_for(engine, am),
        )


def _insert_resolved_osr_point(
    func: Function,
    location: Instruction,
    condition: OSRCondition,
    variant: Optional[Function],
    landing: Optional[BasicBlock],
    mapping: Optional[StateMapping],
    cont_name: Optional[str],
    engine,
    verify: bool,
    telemetry,
    am,
) -> ResolvedOSR:
    module = func.module
    if module is None:
        raise OSRError(f"@{func.name} is not inside a module")

    live_values = am.liveness(func).live_before(location)
    _note_state_size(telemetry, engine, func, "resolved", len(live_values))
    check_block = location.parent
    cont_block = split_block_at(location)

    if variant is None:
        if landing is not None or mapping is not None:
            raise OSRError(
                "landing/mapping given without a variant function"
            )
        variant, vmap = clone_function(
            func, module.unique_name(f"{func.name}.clone")
        )
        landing = vmap[cont_block]
        mapping = StateMapping.identity(live_values).translate_keys(vmap)
    else:
        if landing is None or mapping is None:
            raise OSRError("an explicit variant requires landing and mapping")

    continuation = generate_continuation(
        variant, landing, live_values, mapping,
        name=cont_name or f"{variant.name}to",
        module=module, verify=verify, telemetry=telemetry, am=am,
    )
    continuation.attributes["osr.entrypoint"] = "resolved"

    osr_block = _emit_osr_check(func, check_block, cont_block, condition)
    builder = IRBuilder(osr_block)
    call = builder.call(continuation, live_values, "osr.res", tail=True)
    if func.return_type.is_void:
        builder.ret_void()
    else:
        builder.ret(call)
    condition.finalize(func)

    func.assign_names()
    if verify:
        verify_function(func)
    if engine is not None:
        engine.invalidate(func)  # bumps code_version via the manager
    else:
        am.invalidate(func)
    return ResolvedOSR(func, continuation, variant, osr_block,
                       cont_block, live_values)


#: signature of the run-time code generator the open-OSR stub invokes:
#: (f, osr-block, env, val) -> continuation function pointer
def _generator_type(cont_fnty: FunctionType) -> FunctionType:
    i8p = T.ptr(T.i8)
    return FunctionType(PointerType(cont_fnty), [i8p, i8p, i8p, i8p])


def build_open_osr_stub(
    func: Function,
    osr_source_block: BasicBlock,
    live_values: Sequence[Value],
    generator: Callable,
    env: Any,
    engine,
    stub_name: Optional[str] = None,
    gen_function: Optional[Function] = None,
    gen_block: Optional[BasicBlock] = None,
) -> Function:
    """Build ``f_stub`` (Figure 6).

    The stub receives ``(i8* val, live values...)``; it calls the code
    generator through a function pointer baked in as an ``inttoptr``
    constant, passing three more baked-in ``i8*`` handles — the base
    function, the OSR source block, and the code-generation environment —
    plus the forwarded ``val``.  It then tail-calls the continuation the
    generator returned, forwarding the live values.

    ``generator(f, block, env, val)`` runs in the host; it must return an
    IR :class:`Function` (the continuation) or a callable.

    Stub construction is traced as an ``osr.open_stub`` span on the
    engine's telemetry, and every run-time invocation of the generator
    (i.e. every firing of the open OSR point) emits an ``osr.fire``
    instant with ``kind: "open"``.
    """
    tel = _telemetry_for(engine)
    with tel.span(EV.OSR_OPEN_STUB, function=func.name):
        return _build_open_osr_stub(
            func, osr_source_block, live_values, generator, env, engine,
            stub_name, gen_function, gen_block,
        )


def _make_generator_wrapper(generator, engine, func_name):
    """Wrap a host code generator for invocation from stub IR: emit the
    ``osr.fire`` instant, unwrap handle arguments, and coerce the result
    to an engine-callable."""

    def generator_wrapper(f_obj, block_obj, env_obj, val):
        tel = getattr(engine, "telemetry", None)
        if tel is not None and tel.enabled:
            tel.event(EV.OSR_FIRE, kind="open", function=func_name)
        produced = generator(
            _unwrap_ir(f_obj), block_obj, _unwrap_ir(env_obj), val
        )
        if isinstance(produced, Function):
            return engine.handle_for(produced)
        if callable(produced):
            return produced
        raise OSRError(
            f"open-OSR generator returned non-callable {produced!r}"
        )

    return generator_wrapper


def _build_open_osr_stub(
    func: Function,
    osr_source_block: BasicBlock,
    live_values: Sequence[Value],
    generator: Callable,
    env: Any,
    engine,
    stub_name: Optional[str],
    gen_function: Optional[Function],
    gen_block: Optional[BasicBlock],
) -> Function:
    module = func.module
    cont_fnty = FunctionType(
        func.return_type, [v.type for v in live_values]
    )
    gen_fnty = _generator_type(cont_fnty)
    i8p = T.ptr(T.i8)

    generator_wrapper = _make_generator_wrapper(generator, engine, func.name)
    gen_handle = engine.object_table.intern(
        engine.add_native(f"osr.gen.{func.name}", generator_wrapper)
    )
    func_handle = engine.object_table.intern(
        gen_function if gen_function is not None else func
    )
    block_handle = engine.object_table.intern(
        gen_block if gen_block is not None else osr_source_block
    )
    env_handle = engine.object_table.intern(env)

    stub_params = [i8p] + [v.type for v in live_values]
    stub_arg_names = ["val"] + [f"{v.name or 'live'}_osr" for v in live_values]
    # deduplicate argument names
    seen = set()
    for i, nm in enumerate(stub_arg_names):
        candidate, k = nm, 1
        while candidate in seen:
            candidate = f"{nm}{k}"
            k += 1
        seen.add(candidate)
        stub_arg_names[i] = candidate
    stub = Function(
        FunctionType(func.return_type, stub_params),
        module.unique_name(stub_name or f"{func.name}stub"),
        stub_arg_names,
    )
    module.add_function(stub)

    entry = BasicBlock("entry", stub)
    builder = IRBuilder(entry)
    gen_ptr = ConstantIntToPtr(PointerType(gen_fnty), gen_handle)
    cont_func = builder.call_indirect(
        gen_ptr,
        [
            ConstantIntToPtr(i8p, func_handle),
            ConstantIntToPtr(i8p, block_handle),
            ConstantIntToPtr(i8p, env_handle),
            stub.args[0],
        ],
        "cont.func",
    )
    call = builder.call_indirect(
        cont_func, list(stub.args[1:]), "osr.res", tail=True
    )
    if func.return_type.is_void:
        builder.ret_void()
    else:
        builder.ret(call)
    verify_function(stub)
    return stub


def insert_open_osr_point(
    func: Function,
    location: Instruction,
    condition: OSRCondition,
    generator: Callable,
    engine,
    env: Any = None,
    val: Optional[Value] = None,
    pass_pristine_copy: bool = True,
    use_stub: bool = True,
    verify: bool = True,
    am=None,
    scalarize: bool = False,
) -> OpenOSR:
    """Insert an open OSR point before ``location`` (Figure 3).

    ``generator(f, block, env, val)`` is invoked in the host when the OSR
    fires; it receives the base function, the block the OSR fired from,
    the caller-supplied environment object, and the run-time value of
    ``val`` (an ``i8*``-compatible live value, or null).  It must return
    the continuation :class:`Function` to transfer to.

    With ``pass_pristine_copy`` (the default) the ``f`` handed to the
    generator is a clone of the function *before* the OSR machinery was
    added, so continuations derived from it carry no counter state —
    matching the paper's Figure 7, where the continuation is free of
    instrumentation.  Pass ``False`` to hand the generator the live,
    instrumented function instead (useful when the generator wants to
    keep or re-arm OSR points in the variant).

    Insertion is traced as an ``osr.insert`` span (kind ``open``) on the
    engine's telemetry; the enclosed stub construction contributes a
    nested ``osr.open_stub`` span.  With ``scalarize=True`` the SROA
    pass runs first so the captured live set (and hence the stub and
    continuation signatures) reflects post-scalarization liveness; the
    ``location`` must survive the rewrite.  The final live width is
    recorded as an ``osr.state_size`` instant and the ``osr.live_slots``
    gauge.
    """
    tel = _telemetry_for(engine)
    with tel.span(EV.OSR_INSERT, function=func.name, kind="open"):
        if scalarize:
            _scalarize_for_osr(func, _manager_for(engine, am))
        return _insert_open_osr_point(
            func, location, condition, generator, engine, env, val,
            pass_pristine_copy, use_stub, verify, _manager_for(engine, am),
        )


def _insert_open_osr_point(
    func: Function,
    location: Instruction,
    condition: OSRCondition,
    generator: Callable,
    engine,
    env: Any,
    val: Optional[Value],
    pass_pristine_copy: bool,
    use_stub: bool,
    verify: bool,
    am,
) -> OpenOSR:
    module = func.module
    if module is None:
        raise OSRError(f"@{func.name} is not inside a module")
    if val is not None and not val.type.is_pointer:
        raise OSRError(f"open-OSR val must be pointer-typed, got {val.type}")

    live_values = am.liveness(func).live_before(location)
    _note_state_size(
        _telemetry_for(engine), engine, func, "open", len(live_values)
    )
    check_block = location.parent
    cont_block = split_block_at(location)

    if pass_pristine_copy:
        pristine, pristine_vmap = clone_function(
            func, module.unique_name(f"{func.name}.orig")
        )
        gen_function: Function = pristine
        gen_block: BasicBlock = pristine_vmap[cont_block]
    else:
        gen_function = func
        gen_block = cont_block

    stub: Optional[Function] = None
    if use_stub:
        stub = build_open_osr_stub(
            func, cont_block, live_values, generator, env, engine,
            gen_function=gen_function, gen_block=gen_block,
        )

    osr_block = _emit_osr_check(func, check_block, cont_block, condition)
    builder = IRBuilder(osr_block)
    i8p = T.ptr(T.i8)
    if val is None:
        val_i8 = builder.const_null(i8p)
    elif val.type == i8p:
        val_i8 = val
    else:
        val_i8 = builder.bitcast(val, i8p, "val")
    if use_stub:
        call = builder.call(
            stub, [val_i8] + list(live_values), "osr.res", tail=True
        )
    else:
        # ablation configuration: no stub indirection — the generator
        # invocation machinery is injected straight into the function
        # (the design the paper's stub exists to avoid)
        call = _emit_inline_generation(
            builder, func, live_values, generator, env, engine,
            gen_function, gen_block, val_i8,
        )
    if func.return_type.is_void:
        builder.ret_void()
    else:
        builder.ret(call)
    condition.finalize(func)

    func.assign_names()
    if verify:
        verify_function(func)
    engine.invalidate(func)
    return OpenOSR(func, stub, osr_block, cont_block, live_values)


def _emit_inline_generation(builder, func, live_values, generator, env,
                            engine, gen_function, gen_block, val_i8):
    """Emit the generator call + continuation call directly (no stub)."""
    i8p = T.ptr(T.i8)
    cont_fnty = FunctionType(
        func.return_type, [v.type for v in live_values]
    )
    gen_fnty = _generator_type(cont_fnty)

    generator_wrapper = _make_generator_wrapper(generator, engine, func.name)
    gen_handle = engine.object_table.intern(
        engine.add_native(f"osr.gen.{func.name}", generator_wrapper)
    )
    gen_ptr = ConstantIntToPtr(PointerType(gen_fnty), gen_handle)
    cont_func = builder.call_indirect(
        gen_ptr,
        [
            ConstantIntToPtr(i8p, engine.object_table.intern(gen_function)),
            ConstantIntToPtr(i8p, engine.object_table.intern(gen_block)),
            ConstantIntToPtr(i8p, engine.object_table.intern(env)),
            val_i8,
        ],
        "cont.func",
    )
    return builder.call_indirect(
        cont_func, list(live_values), "osr.res", tail=True
    )


def remove_osr_point(point, engine=None, am=None) -> Function:
    """Undo an OSR instrumentation (de-instrumentation).

    Retargets the firing branch so the check block falls through
    unconditionally, deletes the ``osr`` block, and strips the now-dead
    condition machinery (including self-sustaining counter phis) with
    aggressive DCE.  The continuation/stub functions stay in the module —
    other callers may still reference them; drop them explicitly if not.

    Accepts a :class:`ResolvedOSR`, :class:`OpenOSR`, or anything with
    ``function`` and ``osr_block`` attributes; returns the cleaned
    function.
    """
    from ..analysis.cfg import remove_unreachable_blocks
    from ..transform.dce import aggressive_dce

    func: Function = point.function
    osr_block: BasicBlock = point.osr_block
    if osr_block.parent is not func:
        raise OSRError("OSR point was already removed")
    for pred in osr_block.predecessors():
        term = pred.terminator
        remaining = [s for s in term.successors() if s is not osr_block]
        if len(remaining) != 1:
            raise OSRError(
                f"cannot de-instrument: %{pred.name} does not end in the "
                f"expected two-way OSR check"
            )
        term.erase_from_parent()
        IRBuilder(pred).br(remaining[0])
    remove_unreachable_blocks(func)
    aggressive_dce(func)
    verify_function(func)
    if engine is not None:
        engine.invalidate(func)  # bumps code_version via the manager
    else:
        _manager_for(engine, am).invalidate(func)
    return func
