"""Multi-version function management.

OSRKit "support[s] maintaining multiple versions of the same function,
which can be very useful in the presence of speculative optimizations and
deoptimization".  This module tracks the version tree of a logical
function: the base version, optimized variants reached via OSR, variants
of variants (``f -> f' -> f''``), and the resolved deoptimization edges
back to less-optimized versions.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.function import Function


class FunctionVersion:
    """One node in a logical function's version tree."""

    def __init__(self, function: Function, level: int,
                 parent: Optional["FunctionVersion"] = None,
                 note: str = ""):
        self.function = function
        #: optimization level: 0 = base, higher = more speculative/optimized
        self.level = level
        self.parent = parent
        self.children: List["FunctionVersion"] = []
        #: free-form provenance ("inlined comparator @cmp", "feval g=...")
        self.note = note

    def __repr__(self) -> str:  # pragma: no cover
        return f"<FunctionVersion @{self.function.name} level={self.level}>"


class MultiVersionManager:
    """Registry of version trees, keyed by logical function name."""

    def __init__(self) -> None:
        self._roots: Dict[str, FunctionVersion] = {}
        self._by_function: Dict[str, FunctionVersion] = {}

    def register_base(self, function: Function) -> FunctionVersion:
        """Register ``function`` as the base (level-0) version."""
        if function.name in self._by_function:
            raise ValueError(f"@{function.name} is already registered")
        version = FunctionVersion(function, level=0)
        self._roots[function.name] = version
        self._by_function[function.name] = version
        return version

    def register_variant(self, parent: Function, variant: Function,
                         note: str = "") -> FunctionVersion:
        """Register ``variant`` as derived from ``parent`` (one level up).

        Works transitively, enabling the paper's ``f -> f' -> f''`` chains:
        a variant registered on a variant gets level ``parent.level + 1``.
        """
        parent_version = self._by_function.get(parent.name)
        if parent_version is None:
            parent_version = self.register_base(parent)
        version = FunctionVersion(
            variant, parent_version.level + 1, parent_version, note
        )
        parent_version.children.append(version)
        self._by_function[variant.name] = version
        return version

    def version_of(self, function: Function) -> Optional[FunctionVersion]:
        return self._by_function.get(function.name)

    def base_of(self, function: Function) -> Optional[Function]:
        """The level-0 ancestor of ``function`` (deoptimization target)."""
        version = self._by_function.get(function.name)
        if version is None:
            return None
        while version.parent is not None:
            version = version.parent
        return version.function

    def lineage(self, function: Function) -> List[Function]:
        """Chain from base to ``function`` (inclusive)."""
        version = self._by_function.get(function.name)
        if version is None:
            return []
        chain: List[Function] = []
        while version is not None:
            chain.append(version.function)
            version = version.parent
        chain.reverse()
        return chain

    def all_versions(self, function: Function) -> List[Function]:
        """Every version in the same tree as ``function``."""
        version = self._by_function.get(function.name)
        if version is None:
            return []
        while version.parent is not None:
            version = version.parent
        out: List[Function] = []
        stack = [version]
        while stack:
            node = stack.pop()
            out.append(node.function)
            stack.extend(node.children)
        return out
