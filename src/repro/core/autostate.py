"""Automatic state-mapping construction.

The paper's concluding remark: "In our implementation, encoding
compensation code is currently delegated to the front-end.  Future work
may investigate automatic ways to build it for certain classes of
compiler optimizations."  This module implements that future work for the
class of transformations that maintain a value correspondence map
(cloning, constant folding, DCE, simplify-CFG, and inlining as performed
by :mod:`repro.transform` — anything whose effect on values is captured
by a :class:`~repro.transform.clone.ValueMap`).

:func:`derive_state_mapping` builds the mapping a front-end would
otherwise write by hand:

1. values of the variant that correspond (through the map) to live values
   at the OSR origin are wired as :class:`FromParam` transfers;
2. values that correspond to a *non-live* base value — live at ``L'`` but
   dead at ``L``, the case the paper's compensation code exists for — are
   **recomputed**: compensation code is synthesized by cloning the
   defining instruction chain over the transferred live values;
3. anything else (a value the optimizer invented with no expressible
   provenance) raises :class:`AutoStateError` with a diagnosis, so the
   front-end knows exactly which value still needs manual glue.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..ir.builder import IRBuilder
from ..ir.function import BasicBlock, Function
from ..ir.instructions import (
    AllocaInst,
    BinaryInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    SelectInst,
)
from ..ir.values import Argument, Constant, Value
from .continuation import OSRError, required_landing_state
from .statemap import Computed, FromConstant, FromParam, StateMapping


class AutoStateError(OSRError):
    """Raised when a landing value's provenance cannot be reconstructed."""


#: instruction kinds that are safe to *recompute* in compensation code:
#: pure, memory-free, single-result
_RECOMPUTABLE = (BinaryInst, ICmpInst, FCmpInst, CastInst, SelectInst,
                 GEPInst)


def derive_state_mapping(
    live_values: Sequence[Value],
    vmap,
    variant: Function,
    landing: BasicBlock,
    max_recompute_depth: int = 8,
) -> StateMapping:
    """Automatically construct the state mapping for an OSR into
    ``variant`` at ``landing``.

    ``live_values`` are the base function's live values at the OSR
    origin (the continuation's parameters, in order); ``vmap`` is the
    base→variant value map the transformation maintained.
    """
    # invert the transformation map: variant value -> base value
    inverse: Dict[int, Value] = {}
    for base_value, variant_value in vmap.items():
        inverse[id(variant_value)] = base_value

    live_index = {id(v): i for i, v in enumerate(live_values)}
    mapping = StateMapping()

    for required in required_landing_state(variant, landing):
        base_value = inverse.get(id(required))
        if base_value is not None and id(base_value) in live_index:
            mapping.set(required,
                        FromParam(live_index[id(base_value)]))
            continue
        if isinstance(required, Constant):  # pragma: no cover - defensive
            mapping.set(required, FromConstant(required))
            continue
        # live at L' but not at L: synthesize compensation code that
        # recomputes it from the transferred values
        plan = _recompute_plan(required, inverse, live_index,
                               max_recompute_depth)
        if plan is None:
            origin = (f" (maps back to %{base_value.name})"
                      if base_value is not None else "")
            raise AutoStateError(
                f"cannot automatically reconstruct %{required.name} live "
                f"at %{landing.name} of @{variant.name}{origin}; provide "
                f"a manual Computed source for it"
            )
        mapping.set(required, _compile_plan(required, plan, live_index,
                                            inverse))
    return mapping


def _recompute_plan(value: Value, inverse, live_index,
                    budget: int) -> Optional[List[Instruction]]:
    """Topologically ordered pure instructions whose clones rebuild
    ``value`` from live transfers; ``None`` if impossible."""
    order: List[Instruction] = []
    seen: Dict[int, bool] = {}

    def visit(node: Value, depth: int) -> bool:
        if isinstance(node, Constant):
            return True
        base = inverse.get(id(node))
        if base is not None and id(base) in live_index:
            return True
        if isinstance(node, Argument):
            return False  # an argument that is not transferred is lost
        if not isinstance(node, _RECOMPUTABLE):
            return False
        if depth > budget:
            return False
        if id(node) in seen:
            return seen[id(node)]
        seen[id(node)] = False  # provisional (cycle guard)
        for op in node.operands:
            if not visit(op, depth + 1):
                return False
        seen[id(node)] = True
        order.append(node)
        return True

    if not visit(value, 0):
        return None
    return order


def _compile_plan(value: Value, plan: List[Instruction], live_index,
                  inverse) -> Computed:
    """Wrap a recompute plan as a Computed compensation source."""

    def emit(builder: IRBuilder, params):
        from ..transform.clone import ValueMap, clone_instruction

        local = ValueMap()

        def resolve(node: Value) -> Value:
            base = inverse.get(id(node))
            if base is not None and id(base) in live_index:
                return params[live_index[id(base)]]
            mapped = local.get(node)
            if mapped is not None:
                return mapped
            return node  # constants

        for inst in plan:
            copy = clone_instruction(inst, _ResolvingMap(resolve))
            builder._insert(copy)
            local[inst] = copy
        return resolve(value)

    names = ", ".join(f"%{i.name}" for i in plan)
    return Computed(emit, description=f"recompute [{names}]")


class _ResolvingMap:
    """Adapter giving clone_instruction a callable-backed lookup."""

    def __init__(self, resolve):
        self._resolve = resolve

    def lookup(self, value: Value) -> Value:
        return self._resolve(value)
