"""McOSR-style baseline (Lameed & Hendren, VEE'13) for ablation studies.

The technique OSRKit improves upon (paper Section 3, "Comparison with
McOSR"): when the OSR fires,

1. live values are spilled to a pool of module globals,
2. a global flag is raised, and
3. the function *calls itself* with dummy parameters;

a new entrypoint prepended to the function checks the flag: when set, it
clears the flag, reloads the live values from the global pool and jumps
to the landing pad.  McOSR only supports OSR points at loop headers with
exactly two predecessors; this implementation enforces the same
restriction so the ablation benchmark compares like with like.

Contrast with OSRKit (``repro.core.instrument``): no continuation
function, state travels through memory rather than registers/arguments,
and the extra entrypoint stays in the function, disturbing later
optimization — the effects Table 2/Figure 10 quantify for the OSRKit
design and ``benchmarks/bench_ablation_mcosr.py`` quantifies for this one.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.cfg import predecessor_map
from ..ir import types as T
from ..ir.builder import IRBuilder
from ..ir.function import BasicBlock, Function
from ..ir.instructions import Instruction, PhiInst
from ..ir.values import (
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    GlobalVariable,
    UndefValue,
    Value,
)
from ..ir.verifier import verify_function
from ..obs import events as EV
from ..transform.ssaupdater import SSAUpdater
from .conditions import OSRCondition
from .continuation import OSRError
from .instrument import (
    _emit_osr_check,
    _manager_for,
    _telemetry_for,
    split_block_at,
)


class McOSRPoint:
    """Result of inserting a McOSR-style OSR point."""

    def __init__(self, function: Function, flag: GlobalVariable,
                 pool: List[GlobalVariable], osr_block: BasicBlock,
                 landing_block: BasicBlock):
        self.function = function
        self.flag = flag
        self.pool = pool
        self.osr_block = osr_block
        self.landing_block = landing_block


def _zero_of(ty: T.Type):
    if isinstance(ty, T.IntType):
        return ConstantInt(ty, 0)
    if isinstance(ty, T.FloatType):
        return ConstantFloat(ty, 0.0)
    if isinstance(ty, T.PointerType):
        return ConstantNull(ty)
    raise OSRError(f"cannot build a zero initializer for {ty}")


def insert_mcosr_point(
    func: Function,
    location: Instruction,
    condition: OSRCondition,
    engine=None,
    verify: bool = True,
    am=None,
) -> McOSRPoint:
    """Insert a McOSR-style OSR point before ``location``.

    The "transformation" applied when the OSR fires is the identity (the
    function re-enters itself), which is what the transition-cost
    ablation measures; a real deployment would recompile the function in
    the fired path first.

    Insertion is traced as an ``osr.insert`` span (kind ``mcosr``) on the
    engine's telemetry (ambient when no engine is given); liveness comes
    from ``am`` (defaulting to the engine's analysis manager).
    """
    with _telemetry_for(engine).span(EV.OSR_INSERT, function=func.name,
                                     kind="mcosr"):
        return _insert_mcosr_point(func, location, condition, engine,
                                   verify, _manager_for(engine, am))


def _insert_mcosr_point(
    func: Function,
    location: Instruction,
    condition: OSRCondition,
    engine,
    verify: bool,
    am,
) -> McOSRPoint:
    module = func.module
    if module is None:
        raise OSRError(f"@{func.name} is not inside a module")

    block = location.parent
    preds = predecessor_map(func)[block]
    if len(preds) != 2:
        raise OSRError(
            "McOSR restriction: OSR points only at blocks with exactly "
            f"two predecessors (%{block.name} has {len(preds)})"
        )

    live_values = am.liveness(func).live_before(location)
    check_block = location.parent
    landing = split_block_at(location)

    # -- global pool -----------------------------------------------------------
    flag = GlobalVariable(T.i1, module.unique_name(f"{func.name}.osr.flag"),
                          ConstantInt(T.i1, 0))
    module.add_global(flag)
    pool: List[GlobalVariable] = []
    for index, value in enumerate(live_values):
        gv = GlobalVariable(
            value.type,
            module.unique_name(f"{func.name}.osr.live{index}"),
            _zero_of(value.type),
        )
        module.add_global(gv)
        pool.append(gv)

    # -- firing path: spill, raise flag, self-call -------------------------------
    osr_block = _emit_osr_check(func, check_block, landing, condition)
    builder = IRBuilder(osr_block)
    for value, gv in zip(live_values, pool):
        builder.store(value, gv)
    builder.store(builder.const_i1(True), flag)
    dummy_args: List[Value] = [UndefValue(a.type) for a in func.args]
    call = builder.call(func, dummy_args, "osr.res")
    if func.return_type.is_void:
        builder.ret_void()
    else:
        builder.ret(call)

    # -- new entrypoint: flag check + state restore -------------------------------
    old_entry = func.entry
    new_entry = BasicBlock("osr.dispatch")
    restore = BasicBlock("osr.restore")
    func.insert_block_front(new_entry)
    func.add_block(restore, after=new_entry)
    # hoist the leading alloca/init run (the hotness counter's storage)
    # into the new entry so it dominates both dispatch targets
    hoisted = []
    from ..ir.instructions import AllocaInst as _Alloca
    from ..ir.instructions import StoreInst as _Store

    moved_allocas = set()
    for inst in old_entry.instructions:
        if isinstance(inst, _Alloca):
            hoisted.append(inst)
            moved_allocas.add(id(inst))
        elif (isinstance(inst, _Store)
                and id(inst.pointer) in moved_allocas):
            hoisted.append(inst)
        else:
            break
    for index, inst in enumerate(hoisted):
        old_entry.remove(inst)
        new_entry.insert(index, inst)
    entry_builder = IRBuilder(new_entry)
    flag_value = entry_builder.load(flag, "osr.flag.val")
    entry_builder.cond_br(flag_value, restore, old_entry)

    restore_builder = IRBuilder(restore)
    restore_builder.store(restore_builder.const_i1(False), flag)
    restored: List[Value] = [
        restore_builder.load(gv, f"restored{index}")
        for index, gv in enumerate(pool)
    ]
    restore_builder.br(landing)

    # -- SSA repair: the landing pad now has an extra predecessor ---------------
    for value, new_value in zip(live_values, restored):
        if isinstance(value, PhiInst) and value.parent is landing:
            value.add_incoming(new_value, restore)
        elif isinstance(value, Instruction):
            updater = SSAUpdater(func, value.type, value.name or "mcosr",
                                 am=am)
            updater.add_definition(value.parent, value)
            updater.add_definition(restore, new_value)
            updater.rewrite_uses_of(value)
        else:  # function argument
            updater = SSAUpdater(func, value.type, value.name or "mcosr",
                                 am=am)
            updater.add_definition(new_entry, value)
            updater.add_definition(restore, new_value)
            updater.rewrite_uses_of(value)
    for phi in landing.phis:
        if not phi.has_incoming_for(restore):
            phi.add_incoming(UndefValue(phi.type), restore)

    condition.finalize(func)
    func.assign_names()
    if verify:
        verify_function(func)
    if engine is not None:
        engine.invalidate(func)  # bumps code_version via the manager
    else:
        am.invalidate(func)
    return McOSRPoint(func, flag, pool, osr_block, landing)

