"""OSR conditions.

An OSR condition decides at run time whether the transition fires at the
instrumented point (paper, Section 2).  A condition object knows how to
emit the IR that computes an ``i1`` at the OSR point:

* :class:`HotCounterCondition` — the classic profile counter of Figure 5:
  a counter initialized to the threshold is decremented at each check and
  the OSR fires when it reaches zero.  The counter is emitted as an
  entry-block alloca plus load/dec/store and then promoted to phi form
  with a targeted mem2reg run, producing exactly the fused-counter shape
  the paper shows.
* :class:`AlwaysCondition` / :class:`NeverCondition` — constant
  conditions used by the Q2 transition-cost experiments.
* :class:`GuardCondition` — a front-end-supplied emitter, used for
  speculation guards (deoptimize when an assumption fails).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..ir import types as T
from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.values import ConstantInt, Value
from ..transform.mem2reg import promote_memory_to_registers


class OSRCondition:
    """Base class; subclasses emit the i1 condition at the OSR point."""

    def prepare(self, func: Function) -> None:
        """Emit any entry-block setup (counter initialization).  Runs
        *before* the caller positions its builder at the check point, so
        insertions here cannot invalidate the check-site position."""

    def emit(self, func: Function, builder: IRBuilder) -> Value:
        """Emit condition code with ``builder`` positioned where the check
        happens; returns the ``i1`` value ("fire the OSR")."""
        raise NotImplementedError

    def finalize(self, func: Function) -> None:
        """Hook run after the OSR point is fully inserted (e.g. promote
        counters to SSA form)."""


class HotCounterCondition(OSRCondition):
    """Fire after ``threshold`` executions of the OSR point.

    The counter starts at ``threshold`` and decrements at every check;
    the OSR fires when it hits zero.  A threshold that can never be
    reached within a run gives the *never-firing* configuration of the
    paper's Q1 experiment while still paying the real per-check cost
    (decrement + compare + untaken branch).
    """

    #: a threshold no benchmark will ever reach (Q1 never-firing setup)
    NEVER = 1 << 60

    def __init__(self, threshold: int, counter_name: str = "p.osr"):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = threshold
        self.counter_name = counter_name
        self._alloca = None

    def prepare(self, func: Function) -> None:
        entry_builder = IRBuilder().position_at_start(func.entry)
        slot = entry_builder.alloca(T.i64, f"{self.counter_name}.slot")
        entry_builder.store(entry_builder.const_i64(self.threshold), slot)
        self._alloca = slot

    def emit(self, func: Function, builder: IRBuilder) -> Value:
        slot = self._alloca
        if slot is None:
            raise ValueError("HotCounterCondition.emit before prepare()")
        counter = builder.load(slot, self.counter_name)
        decremented = builder.add(
            counter, builder.const_i64(-1), f"{self.counter_name}1",
            flags=("nsw",),
        )
        builder.store(decremented, slot)
        return builder.icmp("eq", decremented, builder.const_i64(0), "osr.cond")

    def finalize(self, func: Function) -> None:
        # lift the counter into phi form (Figure 5's fused counter)
        if self._alloca is not None and self._alloca.parent is not None:
            promote_memory_to_registers(func, only={self._alloca})
        self._alloca = None


class AlwaysCondition(OSRCondition):
    """Constant-true condition: the OSR fires on first reaching the point."""

    def emit(self, func: Function, builder: IRBuilder) -> Value:
        return ConstantInt(T.i1, 1)


class NeverCondition(OSRCondition):
    """Constant-false condition: machinery is present but never fires.

    Unlike :class:`HotCounterCondition` with an unreachable threshold,
    this emits *no* per-check work, so it measures pure code-layout
    effects of the OSR block.
    """

    def emit(self, func: Function, builder: IRBuilder) -> Value:
        return ConstantInt(T.i1, 0)


class GuardCondition(OSRCondition):
    """Front-end-supplied condition (speculation guards / deoptimization).

    ``emitter(func, builder)`` must return an ``i1`` that is true when the
    speculative assumption *fails* and execution must transfer to the
    (typically less optimized) OSR target.
    """

    def __init__(self, emitter: Callable[[Function, IRBuilder], Value]):
        self.emitter = emitter

    def emit(self, func: Function, builder: IRBuilder) -> Value:
        value = self.emitter(func, builder)
        if value.type != T.i1:
            raise TypeError(
                f"guard emitter must produce i1, got {value.type}"
            )
        return value
