"""Recursive-descent parser for the mini-C front-end.

Standard C expression grammar with precedence climbing; the statement and
declaration syntax covers what the shootout benchmark sources need.
"""

from __future__ import annotations

from typing import List, Optional

from .cast import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    CastExpr,
    Continue,
    CType,
    DoWhile,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    FuncDef,
    GlobalDecl,
    If,
    Index,
    IntLit,
    Param,
    Program,
    Return,
    SizeOf,
    Stmt,
    StringLit,
    Ternary,
    Unary,
    Var,
    VarDecl,
    While,
)
from .lexer import Token, tokenize

_TYPE_KEYWORDS = {"long", "int", "char", "double", "float", "void", "unsigned"}

#: binary operator precedence (higher binds tighter)
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class CParseError(Exception):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


class CParser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- stream helpers ---------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def accept(self, text: str) -> bool:
        if self.peek().text == text and self.peek().kind in ("op", "kw"):
            self.next()
            return True
        return False

    def expect(self, text: str) -> Token:
        tok = self.next()
        if tok.text != text:
            raise CParseError(f"expected {text!r}, found {tok.text!r}", tok.line)
        return tok

    def expect_ident(self) -> Token:
        tok = self.next()
        if tok.kind != "ident":
            raise CParseError(f"expected identifier, found {tok.text!r}", tok.line)
        return tok

    # -- types -------------------------------------------------------------------

    def at_type(self) -> bool:
        tok = self.peek()
        if tok.kind != "kw":
            return False
        if tok.text in ("const", "static"):
            return True
        return tok.text in _TYPE_KEYWORDS

    def parse_type(self) -> CType:
        while self.peek().text in ("const", "static"):
            self.next()
        tok = self.next()
        if tok.text not in _TYPE_KEYWORDS:
            raise CParseError(f"expected type, found {tok.text!r}", tok.line)
        base = tok.text
        if base == "unsigned":
            # 'unsigned' may be followed by a width keyword
            if self.peek().text in ("long", "int", "char"):
                self.next()
        pointers = 0
        while self.accept("*"):
            while self.peek().text == "const":
                self.next()
            pointers += 1
        return CType(base, pointers)

    # -- top level -----------------------------------------------------------------

    def parse_program(self) -> Program:
        functions: List[FuncDef] = []
        globals_: List[GlobalDecl] = []
        while self.peek().kind != "eof":
            line = self.peek().line
            ctype = self.parse_type()
            name = self.expect_ident().text
            if self.peek().text == "(":
                functions.append(self._parse_function(ctype, name, line))
            else:
                globals_.append(self._parse_global(ctype, name, line))
        return Program(functions, globals_)

    def _parse_function(self, return_type: CType, name: str,
                        line: int) -> FuncDef:
        self.expect("(")
        params: List[Param] = []
        if self.peek().text != ")":
            if self.peek().text == "void" and self.peek(1).text == ")":
                self.next()
            else:
                while True:
                    ptype = self.parse_type()
                    pname = self.expect_ident()
                    params.append(Param(ptype, pname.text, pname.line))
                    if not self.accept(","):
                        break
        self.expect(")")
        if self.accept(";"):
            return FuncDef(return_type, name, params, None, line)
        body = self.parse_block()
        return FuncDef(return_type, name, params, body, line)

    def _parse_global(self, ctype: CType, name: str, line: int) -> GlobalDecl:
        array_size: Optional[int] = None
        init = None
        if self.accept("["):
            size_tok = self.next()
            if size_tok.kind != "int":
                raise CParseError("global array size must be constant",
                                  size_tok.line)
            array_size = size_tok.value
            self.expect("]")
        if self.accept("="):
            if self.peek().kind == "string":
                init = self.next().value
            else:
                init = self.parse_expression()
        self.expect(";")
        return GlobalDecl(ctype, name, init, array_size, line)

    # -- statements --------------------------------------------------------------------

    def parse_block(self) -> Block:
        open_tok = self.expect("{")
        statements: List[Stmt] = []
        while self.peek().text != "}":
            statements.append(self.parse_statement())
        self.expect("}")
        return Block(statements, open_tok.line)

    def parse_statement(self) -> Stmt:
        tok = self.peek()
        if tok.text == "{":
            return self.parse_block()
        if tok.text == "if":
            return self._parse_if()
        if tok.text == "while":
            return self._parse_while()
        if tok.text == "do":
            return self._parse_do_while()
        if tok.text == "for":
            return self._parse_for()
        if tok.text == "return":
            self.next()
            value = None
            if self.peek().text != ";":
                value = self.parse_expression()
            self.expect(";")
            return Return(value, tok.line)
        if tok.text == "break":
            self.next()
            self.expect(";")
            return Break(tok.line)
        if tok.text == "continue":
            self.next()
            self.expect(";")
            return Continue(tok.line)
        if self.at_type():
            return self._parse_var_decl()
        expr = self.parse_expression()
        self.expect(";")
        return ExprStmt(expr, tok.line)

    def _parse_var_decl(self) -> Stmt:
        line = self.peek().line
        ctype = self.parse_type()
        decls: List[Stmt] = []
        while True:
            extra_pointers = 0
            while self.accept("*"):
                extra_pointers += 1
            name = self.expect_ident().text
            this_type = CType(ctype.base, ctype.pointers + extra_pointers)
            array_size: Optional[int] = None
            init: Optional[Expr] = None
            if self.accept("["):
                size_tok = self.next()
                if size_tok.kind != "int":
                    raise CParseError("array size must be an integer literal",
                                      size_tok.line)
                array_size = size_tok.value
                self.expect("]")
            if self.accept("="):
                init = self.parse_assignment()
            decls.append(VarDecl(this_type, name, init, array_size, line))
            if not self.accept(","):
                break
        self.expect(";")
        if len(decls) == 1:
            return decls[0]
        return Block(decls, line)

    def _parse_if(self) -> If:
        tok = self.expect("if")
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        then = self.parse_statement()
        otherwise = None
        if self.accept("else"):
            otherwise = self.parse_statement()
        return If(cond, then, otherwise, tok.line)

    def _parse_while(self) -> While:
        tok = self.expect("while")
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        body = self.parse_statement()
        return While(cond, body, tok.line)

    def _parse_do_while(self) -> DoWhile:
        tok = self.expect("do")
        body = self.parse_statement()
        self.expect("while")
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        self.expect(";")
        return DoWhile(cond, body, tok.line)

    def _parse_for(self) -> For:
        tok = self.expect("for")
        self.expect("(")
        init: Optional[Stmt] = None
        if self.peek().text != ";":
            if self.at_type():
                init = self._parse_var_decl()  # consumes the ';'
            else:
                expr = self.parse_expression()
                self.expect(";")
                init = ExprStmt(expr, tok.line)
        else:
            self.expect(";")
        cond: Optional[Expr] = None
        if self.peek().text != ";":
            cond = self.parse_expression()
        self.expect(";")
        step: Optional[Expr] = None
        if self.peek().text != ")":
            step = self.parse_expression()
        self.expect(")")
        body = self.parse_statement()
        return For(init, cond, step, body, tok.line)

    # -- expressions -------------------------------------------------------------------

    def parse_expression(self) -> Expr:
        expr = self.parse_assignment()
        while self.accept(","):
            # comma operator: evaluate both, keep the right
            rhs = self.parse_assignment()
            expr = Binary(",", expr, rhs, rhs.line)
        return expr

    def parse_assignment(self) -> Expr:
        expr = self.parse_ternary()
        tok = self.peek()
        if tok.kind == "op" and tok.text in _ASSIGN_OPS:
            self.next()
            value = self.parse_assignment()
            return Assign(tok.text, expr, value, tok.line)
        return expr

    def parse_ternary(self) -> Expr:
        cond = self.parse_binary(1)
        if self.accept("?"):
            if_true = self.parse_assignment()
            self.expect(":")
            if_false = self.parse_assignment()
            return Ternary(cond, if_true, if_false, cond.line)
        return cond

    def parse_binary(self, min_prec: int) -> Expr:
        lhs = self.parse_unary()
        while True:
            tok = self.peek()
            prec = _PRECEDENCE.get(tok.text) if tok.kind == "op" else None
            if prec is None or prec < min_prec:
                return lhs
            self.next()
            rhs = self.parse_binary(prec + 1)
            lhs = Binary(tok.text, lhs, rhs, tok.line)

    def parse_unary(self) -> Expr:
        tok = self.peek()
        if tok.kind == "op" and tok.text in ("-", "!", "~", "*", "&"):
            self.next()
            return Unary(tok.text, self.parse_unary(), tok.line)
        if tok.kind == "op" and tok.text in ("++", "--"):
            self.next()
            return Unary(tok.text, self.parse_unary(), tok.line)
        if tok.text == "sizeof":
            self.next()
            self.expect("(")
            target = self.parse_type()
            self.expect(")")
            return SizeOf(target, tok.line)
        if tok.text == "(" and self._at_cast():
            self.next()
            target = self.parse_type()
            self.expect(")")
            return CastExpr(target, self.parse_unary(), tok.line)
        return self.parse_postfix()

    def _at_cast(self) -> bool:
        nxt = self.peek(1)
        return nxt.kind == "kw" and (
            nxt.text in _TYPE_KEYWORDS or nxt.text == "const"
        )

    def parse_postfix(self) -> Expr:
        expr = self.parse_primary()
        while True:
            tok = self.peek()
            if tok.text == "[":
                self.next()
                index = self.parse_expression()
                self.expect("]")
                expr = Index(expr, index, tok.line)
            elif tok.text == "++":
                self.next()
                expr = Unary("p++", expr, tok.line)
            elif tok.text == "--":
                self.next()
                expr = Unary("p--", expr, tok.line)
            else:
                return expr

    def parse_primary(self) -> Expr:
        tok = self.next()
        if tok.kind == "int":
            return IntLit(tok.value, tok.line)
        if tok.kind == "float":
            return FloatLit(tok.value, tok.line)
        if tok.kind == "char":
            return IntLit(tok.value, tok.line)
        if tok.kind == "string":
            return StringLit(tok.value, tok.line)
        if tok.kind == "ident":
            if self.peek().text == "(":
                self.next()
                args: List[Expr] = []
                if self.peek().text != ")":
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept(","):
                            break
                self.expect(")")
                return Call(tok.text, args, tok.line)
            return Var(tok.text, tok.line)
        if tok.text == "(":
            expr = self.parse_expression()
            self.expect(")")
            return expr
        raise CParseError(f"unexpected token {tok.text!r}", tok.line)


def parse_c(source: str) -> Program:
    """Parse mini-C source text into an AST."""
    return CParser(source).parse_program()
