"""AST node definitions for the mini-C front-end.

Nodes are plain dataclass-style records; the parser builds them and the
code generator walks them.  Types at this level are :class:`CType`
values, which lower onto :mod:`repro.ir.types` in codegen.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


class CType:
    """A mini-C type: a base scalar plus pointer depth."""

    __slots__ = ("base", "pointers")

    def __init__(self, base: str, pointers: int = 0):
        self.base = base  # 'long' | 'int' | 'char' | 'double' | 'float' | 'void' | 'unsigned'
        self.pointers = pointers

    def pointer_to(self) -> "CType":
        return CType(self.base, self.pointers + 1)

    def pointee(self) -> "CType":
        if self.pointers == 0:
            raise TypeError(f"{self} is not a pointer")
        return CType(self.base, self.pointers - 1)

    @property
    def is_pointer(self) -> bool:
        return self.pointers > 0

    @property
    def is_float(self) -> bool:
        return self.pointers == 0 and self.base in ("double", "float")

    @property
    def is_void(self) -> bool:
        return self.pointers == 0 and self.base == "void"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CType)
            and self.base == other.base
            and self.pointers == other.pointers
        )

    def __hash__(self) -> int:
        return hash((self.base, self.pointers))

    def __str__(self) -> str:
        return self.base + "*" * self.pointers

    def __repr__(self) -> str:  # pragma: no cover
        return f"CType({self})"


class Node:
    """Base AST node; carries the source line for diagnostics."""

    __slots__ = ("line",)

    def __init__(self, line: int):
        self.line = line


# -- expressions -------------------------------------------------------------


class Expr(Node):
    __slots__ = ()


class IntLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: int, line: int):
        super().__init__(line)
        self.value = value


class FloatLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: float, line: int):
        super().__init__(line)
        self.value = value


class StringLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: bytes, line: int):
        super().__init__(line)
        self.value = value


class Var(Expr):
    __slots__ = ("name",)

    def __init__(self, name: str, line: int):
        super().__init__(line)
        self.name = name


class Unary(Expr):
    """op in {'-', '!', '~', '*', '&', '++', '--', 'p++', 'p--'}."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, line: int):
        super().__init__(line)
        self.op = op
        self.operand = operand


class Binary(Expr):
    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Expr, rhs: Expr, line: int):
        super().__init__(line)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class Assign(Expr):
    """op is '=' or a compound assignment like '+='."""

    __slots__ = ("op", "target", "value")

    def __init__(self, op: str, target: Expr, value: Expr, line: int):
        super().__init__(line)
        self.op = op
        self.target = target
        self.value = value


class Ternary(Expr):
    __slots__ = ("cond", "if_true", "if_false")

    def __init__(self, cond: Expr, if_true: Expr, if_false: Expr, line: int):
        super().__init__(line)
        self.cond = cond
        self.if_true = if_true
        self.if_false = if_false


class Call(Expr):
    __slots__ = ("name", "args")

    def __init__(self, name: str, args: List[Expr], line: int):
        super().__init__(line)
        self.name = name
        self.args = args


class Index(Expr):
    __slots__ = ("base", "index")

    def __init__(self, base: Expr, index: Expr, line: int):
        super().__init__(line)
        self.base = base
        self.index = index


class CastExpr(Expr):
    __slots__ = ("target", "operand")

    def __init__(self, target: CType, operand: Expr, line: int):
        super().__init__(line)
        self.target = target
        self.operand = operand


class SizeOf(Expr):
    __slots__ = ("target",)

    def __init__(self, target: CType, line: int):
        super().__init__(line)
        self.target = target


# -- statements -----------------------------------------------------------------


class Stmt(Node):
    __slots__ = ()


class Block(Stmt):
    __slots__ = ("statements",)

    def __init__(self, statements: List[Stmt], line: int):
        super().__init__(line)
        self.statements = statements


class VarDecl(Stmt):
    """``long x = e;`` or ``long a[10];`` (array_size None for scalars)."""

    __slots__ = ("type", "name", "init", "array_size")

    def __init__(self, type: CType, name: str, init: Optional[Expr],
                 array_size: Optional[int], line: int):
        super().__init__(line)
        self.type = type
        self.name = name
        self.init = init
        self.array_size = array_size


class ExprStmt(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr: Expr, line: int):
        super().__init__(line)
        self.expr = expr


class If(Stmt):
    __slots__ = ("cond", "then", "otherwise")

    def __init__(self, cond: Expr, then: Stmt, otherwise: Optional[Stmt],
                 line: int):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.otherwise = otherwise


class While(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, cond: Expr, body: Stmt, line: int):
        super().__init__(line)
        self.cond = cond
        self.body = body


class DoWhile(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, cond: Expr, body: Stmt, line: int):
        super().__init__(line)
        self.cond = cond
        self.body = body


class For(Stmt):
    __slots__ = ("init", "cond", "step", "body")

    def __init__(self, init: Optional[Stmt], cond: Optional[Expr],
                 step: Optional[Expr], body: Stmt, line: int):
        super().__init__(line)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class Return(Stmt):
    __slots__ = ("value",)

    def __init__(self, value: Optional[Expr], line: int):
        super().__init__(line)
        self.value = value


class Break(Stmt):
    __slots__ = ()


class Continue(Stmt):
    __slots__ = ()


# -- top level -------------------------------------------------------------------


class Param(Node):
    __slots__ = ("type", "name")

    def __init__(self, type: CType, name: str, line: int):
        super().__init__(line)
        self.type = type
        self.name = name


class FuncDef(Node):
    __slots__ = ("return_type", "name", "params", "body")

    def __init__(self, return_type: CType, name: str, params: List[Param],
                 body: Optional[Block], line: int):
        super().__init__(line)
        self.return_type = return_type
        self.name = name
        self.params = params
        self.body = body  # None for declarations


class GlobalDecl(Node):
    __slots__ = ("type", "name", "init", "array_size")

    def __init__(self, type: CType, name: str, init, array_size: Optional[int],
                 line: int):
        super().__init__(line)
        self.type = type
        self.name = name
        self.init = init
        self.array_size = array_size


class Program(Node):
    __slots__ = ("functions", "globals")

    def __init__(self, functions: List[FuncDef], globals: List[GlobalDecl]):
        super().__init__(0)
        self.functions = functions
        self.globals = globals
