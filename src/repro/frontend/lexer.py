"""Lexer for the mini-C front-end.

Tokenizes the C subset the shootout benchmarks are written in: scalar
types, pointers, arrays, control flow, function definitions and calls,
the usual operator zoo, string/char literals and both comment styles.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

KEYWORDS = {
    "long", "int", "char", "double", "float", "void", "unsigned",
    "if", "else", "while", "for", "do", "return", "break", "continue",
    "sizeof", "struct", "const", "static",
}

#: multi-character operators, longest first so maximal munch works
OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":", ".",
]


class Token(NamedTuple):
    kind: str       # 'kw' | 'ident' | 'int' | 'float' | 'string' | 'char' | 'op' | 'eof'
    text: str
    line: int
    value: object = None


class LexError(Exception):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


def _is_digit(ch: str) -> bool:
    """ASCII-only digit test (str.isdigit accepts Unicode digits that
    int()/float() reject, e.g. superscripts — found by fuzzing)."""
    return "0" <= ch <= "9"


_ESCAPES = {
    "n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34,
    "a": 7, "b": 8, "f": 12, "v": 11,
}


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = end if end != -1 else n
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise LexError("unterminated block comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if _is_digit(ch) or (ch == "." and i + 1 < n and _is_digit(source[i + 1])):
            i, token = _lex_number(source, i, line)
            tokens.append(token)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
            continue
        if ch == '"':
            i, token = _lex_string(source, i, line)
            tokens.append(token)
            continue
        if ch == "'":
            i, token = _lex_char(source, i, line)
            tokens.append(token)
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line))
                i += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", "", line))
    return tokens


def _lex_number(source: str, i: int, line: int):
    n = len(source)
    start = i
    is_float = False
    if source.startswith("0x", i) or source.startswith("0X", i):
        i += 2
        digits_start = i
        while i < n and (_is_digit(source[i]) or source[i] in "abcdefABCDEF"):
            i += 1
        if i == digits_start:
            raise LexError("hex literal needs at least one digit", line)
        return i, Token("int", source[start:i], line, int(source[start:i], 16))
    while i < n and _is_digit(source[i]):
        i += 1
    if i < n and source[i] == ".":
        is_float = True
        i += 1
        while i < n and _is_digit(source[i]):
            i += 1
    if i < n and source[i] in "eE":
        is_float = True
        i += 1
        if i < n and source[i] in "+-":
            i += 1
        while i < n and _is_digit(source[i]):
            i += 1
    text = source[start:i]
    # C suffixes (L, U, f) are accepted and ignored
    while i < n and source[i] in "lLuUfF":
        if source[i] in "fF":
            is_float = True
        i += 1
    if is_float:
        return i, Token("float", text, line, float(text))
    return i, Token("int", text, line, int(text))


def _lex_string(source: str, i: int, line: int):
    n = len(source)
    i += 1
    out = bytearray()
    while i < n and source[i] != '"':
        ch = source[i]
        if ch == "\n":
            raise LexError("newline in string literal", line)
        if ch == "\\":
            i += 1
            if i >= n:
                raise LexError("bad escape", line)
            esc = source[i]
            if esc == "x":
                hex_digits = source[i + 1:i + 3]
                try:
                    out.append(int(hex_digits, 16))
                except ValueError:
                    raise LexError(f"bad hex escape \\x{hex_digits}",
                                   line) from None
                i += 2
            elif esc in _ESCAPES:
                out.append(_ESCAPES[esc])
            else:
                raise LexError(f"unknown escape \\{esc}", line)
        else:
            code = ord(ch)
            if code > 255:
                raise LexError(
                    f"non-byte character {ch!r} in string literal", line
                )
            out.append(code)
        i += 1
    if i >= n:
        raise LexError("unterminated string literal", line)
    return i + 1, Token("string", source[:0], line, bytes(out))


def _lex_char(source: str, i: int, line: int):
    n = len(source)
    i += 1
    if i >= n:
        raise LexError("unterminated char literal", line)
    if source[i] == "\\":
        i += 1
        if i >= n:
            raise LexError("unterminated char literal", line)
        esc = source[i]
        if esc == "x":
            try:
                value = int(source[i + 1:i + 3], 16)
            except ValueError:
                raise LexError("bad hex escape in char literal",
                               line) from None
            i += 2
        elif esc in _ESCAPES:
            value = _ESCAPES[esc]
        else:
            raise LexError(f"unknown escape \\{esc}", line)
    else:
        value = ord(source[i])
    i += 1
    if i >= n or source[i] != "'":
        raise LexError("unterminated char literal", line)
    return i + 1, Token("char", "", line, value)
