"""repro.frontend — a mini-C front-end (the clang substitute).

Compiles the C subset the shootout benchmark suite is written in down to
repro IR, producing clang -O0-style alloca-based code that the standard
pipelines then optimize (``mem2reg`` for the paper's *unoptimized* tier,
the -O1-like pipeline for *optimized*).
"""

from .cast import CType, Program
from .codegen import BUILTINS, CodegenError, CodeGenerator, compile_c
from .lexer import LexError, tokenize
from .parser import CParseError, parse_c

__all__ = [
    "compile_c",
    "CodeGenerator",
    "CodegenError",
    "BUILTINS",
    "parse_c",
    "CParseError",
    "tokenize",
    "LexError",
    "CType",
    "Program",
]
