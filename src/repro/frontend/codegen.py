"""Code generation: mini-C AST → repro IR.

Generates clang -O0-style code: every local lives in an entry-block
alloca, expressions load/store through it.  The paper's "unoptimized"
configuration then runs mem2reg only; the "optimized" configuration runs
the -O1-like pipeline (see :mod:`repro.transform.passmanager`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir import types as T
from ..ir.builder import IRBuilder
from ..ir.function import BasicBlock, Function, Module
from ..ir.types import FunctionType
from ..ir.values import (
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantString,
    GlobalVariable,
    Value,
)
from ..ir.verifier import verify_module
from . import cast as C
from .parser import parse_c


class CodegenError(Exception):
    def __init__(self, message: str, line: int = 0):
        prefix = f"line {line}: " if line else ""
        super().__init__(f"{prefix}{message}")


#: builtin functions available without declaration (resolved to VM natives)
BUILTINS: Dict[str, Tuple[C.CType, List[C.CType]]] = {
    "malloc": (C.CType("char", 1), [C.CType("long")]),
    "free": (C.CType("void"), [C.CType("char", 1)]),
    "memcpy": (C.CType("char", 1),
               [C.CType("char", 1), C.CType("char", 1), C.CType("long")]),
    "memset": (C.CType("char", 1),
               [C.CType("char", 1), C.CType("long"), C.CType("long")]),
    "putchar": (C.CType("int"), [C.CType("int")]),
    "puts": (C.CType("int"), [C.CType("char", 1)]),
    "print_i64": (C.CType("void"), [C.CType("long")]),
    "print_f64": (C.CType("void"), [C.CType("double")]),
    "sqrt": (C.CType("double"), [C.CType("double")]),
    "sin": (C.CType("double"), [C.CType("double")]),
    "cos": (C.CType("double"), [C.CType("double")]),
    "exp": (C.CType("double"), [C.CType("double")]),
    "log": (C.CType("double"), [C.CType("double")]),
    "pow": (C.CType("double"), [C.CType("double"), C.CType("double")]),
    "floor": (C.CType("double"), [C.CType("double")]),
    "fabs": (C.CType("double"), [C.CType("double")]),
}

_BASE_TYPES = {
    "long": T.i64,
    "unsigned": T.i64,
    "int": T.i32,
    "char": T.i8,
    "double": T.f64,
    "float": T.f32,
    "void": T.void,
}

#: integer rank for usual arithmetic conversions
_RANK = {"char": 0, "int": 1, "long": 2, "unsigned": 2}


def lower_type(ctype: C.CType) -> T.Type:
    base = _BASE_TYPES[ctype.base]
    if ctype.pointers:
        if base.is_void:
            base = T.i8  # void* is modelled as char*
        ty: T.Type = base
        for _ in range(ctype.pointers):
            ty = T.ptr(ty)
        return ty
    return base


class _LocalVar:
    __slots__ = ("ctype", "slot", "is_array", "element")

    def __init__(self, ctype: C.CType, slot: Value, is_array: bool = False):
        self.ctype = ctype
        self.slot = slot
        self.is_array = is_array


class CodeGenerator:
    """Translates one mini-C program into an IR module."""

    def __init__(self, module_name: str = "cmodule"):
        self.module = Module(module_name)
        self._globals: Dict[str, Tuple[C.CType, GlobalVariable, bool]] = {}
        self._signatures: Dict[str, Tuple[C.CType, List[C.CType]]] = {}
        self._string_counter = 0
        # per-function state
        self.builder = IRBuilder()
        self._locals_stack: List[Dict[str, _LocalVar]] = []
        self._function: Optional[Function] = None
        self._return_ctype: Optional[C.CType] = None
        self._break_targets: List[BasicBlock] = []
        self._continue_targets: List[BasicBlock] = []

    # -- program -------------------------------------------------------------------

    def generate(self, program: C.Program) -> Module:
        for gd in program.globals:
            self._declare_global(gd)
        for fd in program.functions:
            self._declare_function(fd)
        for fd in program.functions:
            if fd.body is not None:
                self._generate_function(fd)
        verify_module(self.module)
        return self.module

    def _declare_global(self, gd: C.GlobalDecl) -> None:
        if gd.array_size is not None:
            value_type = T.array(gd.array_size, lower_type(gd.type))
            init = None
            if isinstance(gd.init, bytes):
                data = gd.init + b"\x00"
                if len(data) > gd.array_size:
                    raise CodegenError("string longer than array", gd.line)
                data = data + b"\x00" * (gd.array_size - len(data))
                init = ConstantString(value_type, data)
            gv = GlobalVariable(value_type, gd.name, init)
            self._globals[gd.name] = (gd.type, gv, True)
        else:
            value_type = lower_type(gd.type)
            init = self._constant_init(gd.type, gd.init, gd.line)
            gv = GlobalVariable(value_type, gd.name, init)
            self._globals[gd.name] = (gd.type, gv, False)
        self.module.add_global(gv)

    def _constant_init(self, ctype: C.CType, init, line: int):
        if init is None:
            ty = lower_type(ctype)
            if isinstance(ty, T.IntType):
                return ConstantInt(ty, 0)
            if isinstance(ty, T.FloatType):
                return ConstantFloat(ty, 0.0)
            if isinstance(ty, T.PointerType):
                return ConstantNull(ty)
            raise CodegenError(f"cannot zero-init {ctype}", line)
        if isinstance(init, C.IntLit):
            ty = lower_type(ctype)
            if isinstance(ty, T.FloatType):
                return ConstantFloat(ty, float(init.value))
            return ConstantInt(ty, init.value)
        if isinstance(init, C.FloatLit):
            return ConstantFloat(lower_type(ctype), init.value)
        if isinstance(init, C.Unary) and init.op == "-":
            inner = self._constant_init(ctype, init.operand, line)
            if isinstance(inner, ConstantInt):
                return ConstantInt(inner.type, -inner.value)
            return ConstantFloat(inner.type, -inner.value)
        raise CodegenError("global initializer must be a constant", line)

    def _declare_function(self, fd: C.FuncDef) -> None:
        param_ctypes = [p.type for p in fd.params]
        self._signatures[fd.name] = (fd.return_type, param_ctypes)
        fnty = FunctionType(
            lower_type(fd.return_type),
            [lower_type(t) for t in param_ctypes],
        )
        if not self.module.has_function(fd.name):
            self.module.add_function(
                Function(fnty, fd.name, [p.name for p in fd.params])
            )

    def _ensure_builtin(self, name: str, line: int) -> Function:
        if name not in BUILTINS:
            raise CodegenError(f"unknown function {name!r}", line)
        ret, params = BUILTINS[name]
        self._signatures[name] = (ret, params)
        fnty = FunctionType(lower_type(ret), [lower_type(p) for p in params])
        return self.module.declare_function(name, fnty)

    # -- functions --------------------------------------------------------------------

    def _generate_function(self, fd: C.FuncDef) -> None:
        func = self.module.get_function(fd.name)
        self._function = func
        self._return_ctype = fd.return_type
        self._locals_stack = [{}]
        entry = BasicBlock("entry", func)
        self.builder.position_at_end(entry)
        # spill parameters into allocas (clang -O0 style)
        for param, arg in zip(fd.params, func.args):
            slot = self.builder.alloca(arg.type, f"{arg.name}.addr")
            self.builder.store(arg, slot)
            self._locals_stack[0][param.name] = _LocalVar(param.type, slot)
        self._gen_block(fd.body)
        # implicit return on fall-through
        if not self.builder.block.is_terminated:
            if fd.return_type.is_void:
                self.builder.ret_void()
            else:
                ty = lower_type(fd.return_type)
                if isinstance(ty, T.FloatType):
                    self.builder.ret(ConstantFloat(ty, 0.0))
                elif isinstance(ty, T.PointerType):
                    self.builder.ret(ConstantNull(ty))
                else:
                    self.builder.ret(ConstantInt(ty, 0))
        # drop blocks that ended up unreachable and unterminated (e.g. code
        # after return inside a loop)
        for block in func.blocks:
            if not block.is_terminated:
                IRBuilder(block).unreachable()
        self._function = None

    # -- scope helpers ------------------------------------------------------------------

    def _lookup(self, name: str, line: int) -> _LocalVar:
        for scope in reversed(self._locals_stack):
            if name in scope:
                return scope[name]
        raise CodegenError(f"undefined variable {name!r}", line)

    def _try_lookup(self, name: str) -> Optional[_LocalVar]:
        for scope in reversed(self._locals_stack):
            if name in scope:
                return scope[name]
        return None

    def _new_block(self, name: str) -> BasicBlock:
        block = BasicBlock(name)
        self._function.add_block(block)
        return block

    # -- statements ------------------------------------------------------------------------

    def _gen_block(self, block: C.Block) -> None:
        self._locals_stack.append({})
        for stmt in block.statements:
            self._gen_statement(stmt)
        self._locals_stack.pop()

    def _gen_statement(self, stmt: C.Stmt) -> None:
        if self.builder.block.is_terminated:
            # unreachable statement (code after return/break); emit into a
            # fresh dead block so declarations still typecheck
            dead = self._new_block("dead")
            self.builder.position_at_end(dead)
        if isinstance(stmt, C.Block):
            self._gen_block(stmt)
        elif isinstance(stmt, C.VarDecl):
            self._gen_var_decl(stmt)
        elif isinstance(stmt, C.ExprStmt):
            self._gen_expr(stmt.expr)
        elif isinstance(stmt, C.If):
            self._gen_if(stmt)
        elif isinstance(stmt, C.While):
            self._gen_while(stmt)
        elif isinstance(stmt, C.DoWhile):
            self._gen_do_while(stmt)
        elif isinstance(stmt, C.For):
            self._gen_for(stmt)
        elif isinstance(stmt, C.Return):
            self._gen_return(stmt)
        elif isinstance(stmt, C.Break):
            if not self._break_targets:
                raise CodegenError("break outside loop", stmt.line)
            self.builder.br(self._break_targets[-1])
        elif isinstance(stmt, C.Continue):
            if not self._continue_targets:
                raise CodegenError("continue outside loop", stmt.line)
            self.builder.br(self._continue_targets[-1])
        else:
            raise CodegenError(f"cannot generate {type(stmt).__name__}",
                               stmt.line)

    def _gen_var_decl(self, decl: C.VarDecl) -> None:
        if decl.array_size is not None:
            elem_ty = lower_type(decl.type)
            slot = self.builder.alloca(
                T.array(decl.array_size, elem_ty), decl.name
            )
            var = _LocalVar(decl.type.pointer_to(), slot, is_array=True)
            self._locals_stack[-1][decl.name] = var
            if decl.init is not None:
                raise CodegenError("array initializers are not supported",
                                   decl.line)
            return
        ty = lower_type(decl.type)
        slot = self.builder.alloca(ty, decl.name)
        self._locals_stack[-1][decl.name] = _LocalVar(decl.type, slot)
        if decl.init is not None:
            value, vtype = self._gen_expr(decl.init)
            value = self._convert(value, vtype, decl.type, decl.line)
            self.builder.store(value, slot)

    def _gen_if(self, stmt: C.If) -> None:
        cond = self._gen_condition(stmt.cond)
        then_block = self._new_block("if.then")
        merge_block = self._new_block("if.end")
        else_block = merge_block
        if stmt.otherwise is not None:
            else_block = self._new_block("if.else")
        self.builder.cond_br(cond, then_block, else_block)

        self.builder.position_at_end(then_block)
        self._gen_statement(stmt.then)
        if not self.builder.block.is_terminated:
            self.builder.br(merge_block)

        if stmt.otherwise is not None:
            self.builder.position_at_end(else_block)
            self._gen_statement(stmt.otherwise)
            if not self.builder.block.is_terminated:
                self.builder.br(merge_block)

        self.builder.position_at_end(merge_block)

    def _gen_while(self, stmt: C.While) -> None:
        cond_block = self._new_block("while.cond")
        body_block = self._new_block("while.body")
        end_block = self._new_block("while.end")
        self.builder.br(cond_block)

        self.builder.position_at_end(cond_block)
        cond = self._gen_condition(stmt.cond)
        self.builder.cond_br(cond, body_block, end_block)

        self.builder.position_at_end(body_block)
        self._break_targets.append(end_block)
        self._continue_targets.append(cond_block)
        self._gen_statement(stmt.body)
        self._break_targets.pop()
        self._continue_targets.pop()
        if not self.builder.block.is_terminated:
            self.builder.br(cond_block)

        self.builder.position_at_end(end_block)

    def _gen_do_while(self, stmt: C.DoWhile) -> None:
        body_block = self._new_block("do.body")
        cond_block = self._new_block("do.cond")
        end_block = self._new_block("do.end")
        self.builder.br(body_block)

        self.builder.position_at_end(body_block)
        self._break_targets.append(end_block)
        self._continue_targets.append(cond_block)
        self._gen_statement(stmt.body)
        self._break_targets.pop()
        self._continue_targets.pop()
        if not self.builder.block.is_terminated:
            self.builder.br(cond_block)

        self.builder.position_at_end(cond_block)
        cond = self._gen_condition(stmt.cond)
        self.builder.cond_br(cond, body_block, end_block)

        self.builder.position_at_end(end_block)

    def _gen_for(self, stmt: C.For) -> None:
        self._locals_stack.append({})
        if stmt.init is not None:
            self._gen_statement(stmt.init)
        cond_block = self._new_block("for.cond")
        body_block = self._new_block("for.body")
        step_block = self._new_block("for.step")
        end_block = self._new_block("for.end")
        self.builder.br(cond_block)

        self.builder.position_at_end(cond_block)
        if stmt.cond is not None:
            cond = self._gen_condition(stmt.cond)
            self.builder.cond_br(cond, body_block, end_block)
        else:
            self.builder.br(body_block)

        self.builder.position_at_end(body_block)
        self._break_targets.append(end_block)
        self._continue_targets.append(step_block)
        self._gen_statement(stmt.body)
        self._break_targets.pop()
        self._continue_targets.pop()
        if not self.builder.block.is_terminated:
            self.builder.br(step_block)

        self.builder.position_at_end(step_block)
        if stmt.step is not None:
            self._gen_expr(stmt.step)
        self.builder.br(cond_block)

        self.builder.position_at_end(end_block)
        self._locals_stack.pop()

    def _gen_return(self, stmt: C.Return) -> None:
        if stmt.value is None:
            if not self._return_ctype.is_void:
                raise CodegenError("missing return value", stmt.line)
            self.builder.ret_void()
            return
        value, vtype = self._gen_expr(stmt.value)
        value = self._convert(value, vtype, self._return_ctype, stmt.line)
        self.builder.ret(value)

    # -- expressions ------------------------------------------------------------------------

    def _gen_condition(self, expr: C.Expr) -> Value:
        """Evaluate an expression as an i1 truth value."""
        value, ctype = self._gen_expr(expr)
        return self._truthy(value, ctype)

    def _truthy(self, value: Value, ctype: C.CType) -> Value:
        if value.type == T.i1:
            return value
        if ctype.is_pointer:
            null = ConstantNull(value.type)
            return self.builder.icmp("ne", value, null, "tobool")
        if ctype.is_float:
            zero = ConstantFloat(value.type, 0.0)
            return self.builder.fcmp("one", value, zero, "tobool")
        zero = ConstantInt(value.type, 0)
        return self.builder.icmp("ne", value, zero, "tobool")

    def _gen_expr(self, expr: C.Expr) -> Tuple[Value, C.CType]:
        """Evaluate an expression; returns (IR value, C type)."""
        if isinstance(expr, C.IntLit):
            if -(1 << 31) <= expr.value < (1 << 31):
                return ConstantInt(T.i64, expr.value), C.CType("long")
            return ConstantInt(T.i64, expr.value), C.CType("long")
        if isinstance(expr, C.FloatLit):
            return ConstantFloat(T.f64, expr.value), C.CType("double")
        if isinstance(expr, C.StringLit):
            return self._gen_string(expr)
        if isinstance(expr, C.Var):
            return self._gen_var_read(expr)
        if isinstance(expr, C.Unary):
            return self._gen_unary(expr)
        if isinstance(expr, C.Binary):
            return self._gen_binary(expr)
        if isinstance(expr, C.Assign):
            return self._gen_assign(expr)
        if isinstance(expr, C.Ternary):
            return self._gen_ternary(expr)
        if isinstance(expr, C.Call):
            return self._gen_call(expr)
        if isinstance(expr, C.Index):
            address, ctype = self._gen_index_address(expr)
            return self.builder.load(address), ctype
        if isinstance(expr, C.CastExpr):
            value, vtype = self._gen_expr(expr.operand)
            return (
                self._convert(value, vtype, expr.target, expr.line,
                              explicit=True),
                expr.target,
            )
        if isinstance(expr, C.SizeOf):
            size = T.size_of(lower_type(expr.target))
            return ConstantInt(T.i64, size), C.CType("long")
        raise CodegenError(f"cannot generate {type(expr).__name__}",
                           expr.line)

    def _gen_string(self, expr: C.StringLit) -> Tuple[Value, C.CType]:
        data = expr.value + b"\x00"
        name = f".str{self._string_counter}"
        self._string_counter += 1
        gv = GlobalVariable(
            T.array(len(data), T.i8), name,
            ConstantString(T.array(len(data), T.i8), data),
            is_constant=True,
        )
        self.module.add_global(gv)
        pointer = self.builder.gep(gv, [0, 0], "str")
        return pointer, C.CType("char", 1)

    def _gen_var_read(self, expr: C.Var) -> Tuple[Value, C.CType]:
        var = self._try_lookup(expr.name)
        if var is not None:
            if var.is_array:
                pointer = self.builder.gep(var.slot, [0, 0], expr.name)
                return pointer, var.ctype
            return self.builder.load(var.slot, expr.name), var.ctype
        if expr.name in self._globals:
            ctype, gv, is_array = self._globals[expr.name]
            if is_array:
                pointer = self.builder.gep(gv, [0, 0], expr.name)
                return pointer, ctype.pointer_to()
            return self.builder.load(gv, expr.name), ctype
        raise CodegenError(f"undefined variable {expr.name!r}", expr.line)

    # -- lvalues -----------------------------------------------------------------------------

    def _gen_address(self, expr: C.Expr) -> Tuple[Value, C.CType]:
        """Address of an lvalue; returns (pointer value, pointee C type)."""
        if isinstance(expr, C.Var):
            var = self._try_lookup(expr.name)
            if var is not None:
                if var.is_array:
                    raise CodegenError("cannot assign to an array",
                                       expr.line)
                return var.slot, var.ctype
            if expr.name in self._globals:
                ctype, gv, is_array = self._globals[expr.name]
                if is_array:
                    raise CodegenError("cannot assign to an array",
                                       expr.line)
                return gv, ctype
            raise CodegenError(f"undefined variable {expr.name!r}", expr.line)
        if isinstance(expr, C.Index):
            return self._gen_index_address(expr)
        if isinstance(expr, C.Unary) and expr.op == "*":
            value, ctype = self._gen_expr(expr.operand)
            if not ctype.is_pointer:
                raise CodegenError("cannot dereference non-pointer",
                                   expr.line)
            return value, ctype.pointee()
        raise CodegenError("expression is not an lvalue", expr.line)

    def _gen_index_address(self, expr: C.Index) -> Tuple[Value, C.CType]:
        base, btype = self._gen_expr(expr.base)
        if not btype.is_pointer:
            raise CodegenError("cannot index non-pointer", expr.line)
        index, itype = self._gen_expr(expr.index)
        index = self._to_i64(index, itype, expr.line)
        address = self.builder.gep(base, [index], "idx", inbounds=True)
        return address, btype.pointee()

    # -- operators ----------------------------------------------------------------------------

    def _gen_unary(self, expr: C.Unary) -> Tuple[Value, C.CType]:
        op = expr.op
        if op == "-":
            value, ctype = self._gen_expr(expr.operand)
            if ctype.is_float:
                return self.builder.fneg(value, "neg"), ctype
            return self.builder.neg(value, "neg"), ctype
        if op == "!":
            truth = self._gen_condition(expr.operand)
            flipped = self.builder.xor(truth, ConstantInt(T.i1, 1), "lnot")
            return self.builder.zext(flipped, T.i32, "lnot.ext"), C.CType("int")
        if op == "~":
            value, ctype = self._gen_expr(expr.operand)
            return self.builder.not_(value, "not"), ctype
        if op == "*":
            value, ctype = self._gen_expr(expr.operand)
            if not ctype.is_pointer:
                raise CodegenError("cannot dereference non-pointer",
                                   expr.line)
            return self.builder.load(value, "deref"), ctype.pointee()
        if op == "&":
            address, ctype = self._gen_address(expr.operand)
            return address, ctype.pointer_to()
        if op in ("++", "--", "p++", "p--"):
            return self._gen_incdec(expr)
        raise CodegenError(f"unknown unary operator {op!r}", expr.line)

    def _gen_incdec(self, expr: C.Unary) -> Tuple[Value, C.CType]:
        address, ctype = self._gen_address(expr.operand)
        old = self.builder.load(address, "incdec.old")
        delta = 1 if expr.op in ("++", "p++") else -1
        if ctype.is_pointer:
            new = self.builder.gep(old, [ConstantInt(T.i64, delta)],
                                   "incdec.ptr", inbounds=True)
        elif ctype.is_float:
            new = self.builder.fadd(old, ConstantFloat(old.type, float(delta)),
                                    "incdec.new")
        else:
            new = self.builder.add(old, ConstantInt(old.type, delta),
                                   "incdec.new")
        self.builder.store(new, address)
        if expr.op.startswith("p"):
            return old, ctype
        return new, ctype

    def _gen_binary(self, expr: C.Binary) -> Tuple[Value, C.CType]:
        op = expr.op
        if op == "&&":
            return self._gen_logical(expr, is_and=True)
        if op == "||":
            return self._gen_logical(expr, is_and=False)
        if op == ",":
            self._gen_expr(expr.lhs)
            return self._gen_expr(expr.rhs)

        lhs, ltype = self._gen_expr(expr.lhs)
        rhs, rtype = self._gen_expr(expr.rhs)

        # the integer literal 0 compares against pointers as NULL
        if (ltype.is_pointer and isinstance(rhs, ConstantInt)
                and rhs.value == 0 and op in ("==", "!=")):
            rhs, rtype = ConstantNull(lhs.type), ltype
        elif (rtype.is_pointer and isinstance(lhs, ConstantInt)
                and lhs.value == 0 and op in ("==", "!=")):
            lhs, ltype = ConstantNull(rhs.type), rtype

        # pointer arithmetic
        if ltype.is_pointer and op in ("+", "-") and not rtype.is_pointer:
            offset = self._to_i64(rhs, rtype, expr.line)
            if op == "-":
                offset = self.builder.neg(offset, "ptr.negoff")
            return (
                self.builder.gep(lhs, [offset], "ptr.add", inbounds=True),
                ltype,
            )
        if rtype.is_pointer and op == "+" and not ltype.is_pointer:
            offset = self._to_i64(lhs, ltype, expr.line)
            return (
                self.builder.gep(rhs, [offset], "ptr.add", inbounds=True),
                rtype,
            )
        if ltype.is_pointer and rtype.is_pointer:
            if op in ("==", "!=", "<", "<=", ">", ">="):
                pred = {"==": "eq", "!=": "ne", "<": "ult", "<=": "ule",
                        ">": "ugt", ">=": "uge"}[op]
                result = self.builder.icmp(pred, lhs, rhs, "cmp")
                return self.builder.zext(result, T.i32, "cmp.ext"), C.CType("int")
            raise CodegenError(f"unsupported pointer operation {op!r}",
                               expr.line)

        # usual arithmetic conversions
        lhs, rhs, common = self._usual_conversions(lhs, ltype, rhs, rtype,
                                                   expr.line)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if common.is_float:
                pred = {"==": "oeq", "!=": "one", "<": "olt", "<=": "ole",
                        ">": "ogt", ">=": "oge"}[op]
                result = self.builder.fcmp(pred, lhs, rhs, "cmp")
            else:
                pred = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle",
                        ">": "sgt", ">=": "sge"}[op]
                result = self.builder.icmp(pred, lhs, rhs, "cmp")
            return self.builder.zext(result, T.i32, "cmp.ext"), C.CType("int")

        if common.is_float:
            opcode = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv",
                      "%": "frem"}.get(op)
            if opcode is None:
                raise CodegenError(f"invalid float operation {op!r}",
                                   expr.line)
            method = getattr(self.builder, opcode)
            return method(lhs, rhs, "f" + op), common
        opcode = {"+": "add", "-": "sub", "*": "mul", "/": "sdiv",
                  "%": "srem", "&": "and_", "|": "or_", "^": "xor",
                  "<<": "shl", ">>": "ashr"}.get(op)
        if opcode is None:
            raise CodegenError(f"invalid integer operation {op!r}", expr.line)
        method = getattr(self.builder, opcode)
        return method(lhs, rhs, "b" + opcode.rstrip("_")), common

    def _gen_logical(self, expr: C.Binary, is_and: bool) -> Tuple[Value, C.CType]:
        lhs_cond = self._gen_condition(expr.lhs)
        lhs_block = self.builder.block
        rhs_block = self._new_block("land.rhs" if is_and else "lor.rhs")
        merge = self._new_block("land.end" if is_and else "lor.end")
        if is_and:
            self.builder.cond_br(lhs_cond, rhs_block, merge)
        else:
            self.builder.cond_br(lhs_cond, merge, rhs_block)

        self.builder.position_at_end(rhs_block)
        rhs_cond = self._gen_condition(expr.rhs)
        rhs_end = self.builder.block
        self.builder.br(merge)

        self.builder.position_at_end(merge)
        phi = self.builder.phi(T.i1, "logic")
        phi.add_incoming(ConstantInt(T.i1, 0 if is_and else 1), lhs_block)
        phi.add_incoming(rhs_cond, rhs_end)
        return self.builder.zext(phi, T.i32, "logic.ext"), C.CType("int")

    def _gen_ternary(self, expr: C.Ternary) -> Tuple[Value, C.CType]:
        cond = self._gen_condition(expr.cond)
        then_block = self._new_block("cond.true")
        else_block = self._new_block("cond.false")
        merge = self._new_block("cond.end")
        self.builder.cond_br(cond, then_block, else_block)

        self.builder.position_at_end(then_block)
        tvalue, ttype = self._gen_expr(expr.if_true)
        then_end = self.builder.block

        self.builder.position_at_end(else_block)
        fvalue, ftype = self._gen_expr(expr.if_false)
        else_end = self.builder.block

        # unify arms
        if ttype != ftype:
            common = self._common_type(ttype, ftype, expr.line)
            self.builder.position_at_end(then_end)
            tvalue = self._convert(tvalue, ttype, common, expr.line)
            self.builder.position_at_end(else_end)
            fvalue = self._convert(fvalue, ftype, common, expr.line)
            ttype = common
        self.builder.position_at_end(then_end)
        self.builder.br(merge)
        self.builder.position_at_end(else_end)
        self.builder.br(merge)

        self.builder.position_at_end(merge)
        phi = self.builder.phi(tvalue.type, "cond.val")
        phi.add_incoming(tvalue, then_end)
        phi.add_incoming(fvalue, else_end)
        return phi, ttype

    def _gen_assign(self, expr: C.Assign) -> Tuple[Value, C.CType]:
        address, ctype = self._gen_address(expr.target)
        if expr.op == "=":
            value, vtype = self._gen_expr(expr.value)
            value = self._convert(value, vtype, ctype, expr.line)
            self.builder.store(value, address)
            return value, ctype
        # compound assignment: a op= b  ==>  a = a op b
        base_op = expr.op[:-1]
        synthetic = C.Binary(base_op, expr.target, expr.value, expr.line)
        value, vtype = self._gen_binary(synthetic)
        value = self._convert(value, vtype, ctype, expr.line)
        self.builder.store(value, address)
        return value, ctype

    def _gen_call(self, expr: C.Call) -> Tuple[Value, C.CType]:
        if expr.name in self._signatures:
            ret_ctype, param_ctypes = self._signatures[expr.name]
            callee = self.module.get_function(expr.name)
        else:
            callee = self._ensure_builtin(expr.name, expr.line)
            ret_ctype, param_ctypes = self._signatures[expr.name]
        if len(expr.args) != len(param_ctypes):
            raise CodegenError(
                f"{expr.name} expects {len(param_ctypes)} args, "
                f"got {len(expr.args)}", expr.line,
            )
        args: List[Value] = []
        for arg_expr, param_ctype in zip(expr.args, param_ctypes):
            value, vtype = self._gen_expr(arg_expr)
            args.append(self._convert(value, vtype, param_ctype, expr.line))
        name = "" if ret_ctype.is_void else "call"
        result = self.builder.call(callee, args, name)
        return result, ret_ctype

    # -- conversions ---------------------------------------------------------------------------

    def _to_i64(self, value: Value, ctype: C.CType, line: int) -> Value:
        return self._convert(value, ctype, C.CType("long"), line)

    def _common_type(self, a: C.CType, b: C.CType, line: int) -> C.CType:
        if a.is_pointer or b.is_pointer:
            if a.is_pointer and b.is_pointer:
                return a
            raise CodegenError("cannot unify pointer and scalar", line)
        if a.is_float or b.is_float:
            return C.CType("double")
        # C's integer promotions: arithmetic never happens below int rank
        winner = a if _RANK[a.base] >= _RANK[b.base] else b
        if _RANK[winner.base] < _RANK["int"]:
            return C.CType("int")
        return winner

    def _usual_conversions(self, lhs: Value, ltype: C.CType, rhs: Value,
                           rtype: C.CType, line: int):
        common = self._common_type(ltype, rtype, line)
        lhs = self._convert(lhs, ltype, common, line)
        rhs = self._convert(rhs, rtype, common, line)
        return lhs, rhs, common

    def _convert(self, value: Value, from_type: C.CType, to_type: C.CType,
                 line: int, explicit: bool = False) -> Value:
        if from_type == to_type:
            return value
        src = lower_type(from_type)
        dst = lower_type(to_type)
        if src == dst:
            return value
        # constant folding of the common literal cases keeps IR readable
        if isinstance(value, ConstantInt):
            if isinstance(dst, T.IntType):
                return ConstantInt(dst, value.value)
            if isinstance(dst, T.FloatType):
                return ConstantFloat(dst, float(value.value))
            if isinstance(dst, T.PointerType) and value.value == 0:
                return ConstantNull(dst)  # assigning/passing literal NULL
        if isinstance(value, ConstantFloat) and isinstance(dst, T.FloatType):
            return ConstantFloat(dst, value.value)

        if isinstance(src, T.IntType) and isinstance(dst, T.IntType):
            if dst.bits > src.bits:
                return self.builder.sext(value, dst, "conv")
            return self.builder.trunc(value, dst, "conv")
        if isinstance(src, T.IntType) and isinstance(dst, T.FloatType):
            return self.builder.sitofp(value, dst, "conv")
        if isinstance(src, T.FloatType) and isinstance(dst, T.IntType):
            return self.builder.fptosi(value, dst, "conv")
        if isinstance(src, T.FloatType) and isinstance(dst, T.FloatType):
            opcode = "fpext" if dst.bits > src.bits else "fptrunc"
            return self.builder.cast(opcode, value, dst, "conv")
        if isinstance(src, T.PointerType) and isinstance(dst, T.PointerType):
            return self.builder.bitcast(value, dst, "conv")
        raise CodegenError(f"cannot convert {from_type} to {to_type}", line)


def compile_c(source: str, module_name: str = "cmodule") -> Module:
    """Compile mini-C source text into a verified IR module."""
    program = parse_c(source)
    return CodeGenerator(module_name).generate(program)
