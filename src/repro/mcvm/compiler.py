"""IIR → IR compiler for the mini-McVM.

Lowers a type-inferred IIR function to repro IR.  Storage model: every
MATLAB variable gets one entry-block alloca whose IR type follows its
inferred class — ``f64`` for DOUBLE, ``i8*`` for HANDLE/BOXED.  DOUBLE
code uses fast float instructions; BOXED code calls the generic ``mc_*``
runtime (the paper's "slow generic instructions").

The compiler records the artifacts the feval machinery needs (paper
component 2, "track the variable map between IIR and IR objects"):

* ``var_slots`` — IIR variable name → alloca;
* ``loop_headers`` — IIR loop id → IR loop-header block (the OSR landing
  correlation).

mem2reg is *not* run here: the OSR inserter reads live state through the
allocas first (and promotes everything afterwards), and continuation
generation wants the alloca form so compensation code can rebuild frame
slots exactly like the paper's Figure 9.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.manager import resolve_manager
from ..ir import types as T
from ..ir.builder import IRBuilder
from ..ir.function import BasicBlock, Function, Module
from ..ir.instructions import AllocaInst
from ..ir.types import FunctionType
from ..ir.values import ConstantFloat, ConstantNull, Value
from ..ir.verifier import verify_function
from . import mcast as M
from .mctypes import BOXED, DOUBLE, HANDLE, BUILTIN_FUNCTIONS, TypeInfo
from .runtime import I8P, declare_builtin, declare_runtime


class McCompileError(Exception):
    def __init__(self, message: str, line: int = 0):
        prefix = f"line {line}: " if line else ""
        super().__init__(f"{prefix}{message}")


def ir_type_of(cls: str) -> T.Type:
    return T.f64 if cls == DOUBLE else I8P


class CompiledVersion:
    """One type-specialized compilation of a MATLAB function."""

    def __init__(self, ir_function: Function, info: TypeInfo,
                 var_slots: Dict[str, AllocaInst],
                 loop_headers: Dict[int, BasicBlock]):
        self.ir_function = ir_function
        self.info = info
        self.var_slots = var_slots
        self.loop_headers = loop_headers

    def __repr__(self) -> str:  # pragma: no cover
        return f"<CompiledVersion @{self.ir_function.name}>"


class IIRCompiler:
    """Compiles one inferred IIR function into a module.

    ``version_oracle(name, arg_classes) -> CompiledVersion`` resolves
    direct calls to other user functions (the VM supplies it, compiling
    callees recursively).
    """

    def __init__(self, module: Module, version_oracle=None,
                 object_table=None, analysis_manager=None):
        self.module = module
        self.version_oracle = version_oracle
        self.analysis_manager = analysis_manager
        self._object_table_ref = object_table
        self._output_name: Optional[str] = None
        self.builder = IRBuilder()
        self._function: Optional[Function] = None
        self._slots: Dict[str, AllocaInst] = {}
        self._classes: Dict[str, str] = {}
        self._loop_headers: Dict[int, BasicBlock] = {}
        self._break_targets: List[BasicBlock] = []
        self._continue_targets: List[BasicBlock] = []
        self._handle_consts: Dict[str, Value] = {}

    # -- entry point ---------------------------------------------------------

    @staticmethod
    def make_shell(info: TypeInfo, ir_name: str, params,
                   forced_return_class: Optional[str] = None) -> Function:
        """Create the (empty) IR function for a version's signature.

        The VM registers the shell in its version cache *before* the body
        is generated, so directly/mutually recursive MATLAB functions can
        reference their own version while it is being compiled.
        """
        return_class = forced_return_class or info.return_class
        fnty = FunctionType(
            ir_type_of(return_class),
            [ir_type_of(c) for c in info.arg_classes],
        )
        return Function(fnty, ir_name, list(params))

    def compile(self, function: M.McFunction, info: TypeInfo,
                ir_name: str,
                forced_return_class: Optional[str] = None,
                into: Optional[Function] = None) -> CompiledVersion:
        return_class = forced_return_class or info.return_class
        if into is not None:
            func = into
        else:
            func = self.make_shell(info, ir_name, function.params,
                                   forced_return_class)
            self.module.add_function(func)
        self._function = func
        self._classes = info.var_classes
        self._slots = {}
        self._loop_headers = {}
        self._handle_consts = {}
        self._output_name = function.output

        entry = BasicBlock("entry", func)
        self.builder.position_at_end(entry)

        # allocate a slot per variable; params are spilled on entry
        for name, cls in sorted(info.var_classes.items()):
            slot = self.builder.alloca(ir_type_of(cls), f"{name}.slot")
            self._slots[name] = slot
            if cls == DOUBLE:
                self.builder.store(ConstantFloat(T.f64, 0.0), slot)
            else:
                self.builder.store(ConstantNull(I8P), slot)
        for param, arg in zip(function.params, func.args):
            self.builder.store(arg, self._slots[param])

        returned = self._gen_body(function.body)
        if not self.builder.block.is_terminated:
            self._emit_return(function, info, return_class)
        # terminate stray blocks (code after return)
        for block in func.blocks:
            if not block.is_terminated:
                IRBuilder(block).unreachable()
        verify_function(func)
        if into is not None:
            # compiling into a pre-registered shell rewrites a function
            # other code may already have analyzed — retire stale entries
            resolve_manager(self.analysis_manager).invalidate(func)
        result = CompiledVersion(func, info, dict(self._slots),
                                 dict(self._loop_headers))
        self._function = None
        return result

    def _emit_return(self, function: M.McFunction, info: TypeInfo,
                     return_class: str) -> None:
        if function.output is not None and function.output in self._slots:
            out_cls = self._classes[function.output]
            value = self.builder.load(self._slots[function.output],
                                      function.output)
            value = self._coerce(value, out_cls, return_class)
        else:
            value = self._default_value(return_class)
        self.builder.ret(value)

    def _default_value(self, cls: str) -> Value:
        if cls == DOUBLE:
            return ConstantFloat(T.f64, 0.0)
        return ConstantNull(I8P)

    # -- statements ------------------------------------------------------------

    def _gen_body(self, body: List[M.Stmt]) -> None:
        for stmt in body:
            if self.builder.block.is_terminated:
                dead = self._new_block("dead")
                self.builder.position_at_end(dead)
            self._gen_statement(stmt)

    def _gen_statement(self, stmt: M.Stmt) -> None:
        if isinstance(stmt, M.AssignStmt):
            value, cls = self._gen_expr(stmt.value)
            target_cls = self._classes[stmt.name]
            value = self._coerce(value, cls, target_cls)
            self.builder.store(value, self._slots[stmt.name])
        elif isinstance(stmt, M.ExprStmt):
            self._gen_expr(stmt.expr)
        elif isinstance(stmt, M.IfStmt):
            self._gen_if(stmt)
        elif isinstance(stmt, M.WhileStmt):
            self._gen_while(stmt)
        elif isinstance(stmt, M.ForStmt):
            self._gen_for(stmt)
        elif isinstance(stmt, M.BreakStmt):
            if not self._break_targets:
                raise McCompileError("break outside loop", stmt.line)
            self.builder.br(self._break_targets[-1])
        elif isinstance(stmt, M.ContinueStmt):
            if not self._continue_targets:
                raise McCompileError("continue outside loop", stmt.line)
            self.builder.br(self._continue_targets[-1])
        elif isinstance(stmt, M.ReturnStmt):
            # jump to a synthetic return; simplest encoding: emit the
            # return inline (the output variable already holds its value)
            info_cls = self._function.return_type
            out_name = self._current_output()
            if out_name is not None and out_name in self._slots:
                value = self.builder.load(self._slots[out_name], out_name)
                value = self._coerce(
                    value, self._classes[out_name],
                    DOUBLE if info_cls == T.f64 else BOXED,
                )
            else:
                value = (ConstantFloat(T.f64, 0.0) if info_cls == T.f64
                         else ConstantNull(I8P))
            self.builder.ret(value)
        else:
            raise McCompileError(
                f"cannot compile {type(stmt).__name__}", stmt.line
            )

    def _current_output(self) -> Optional[str]:
        return self._output_name

    def _new_block(self, name: str) -> BasicBlock:
        block = BasicBlock(name)
        self._function.add_block(block)
        return block

    def _gen_if(self, stmt: M.IfStmt) -> None:
        cond = self._gen_condition(stmt.cond)
        then_block = self._new_block("if.then")
        merge = self._new_block("if.end")
        else_block = merge
        if stmt.orelse:
            else_block = self._new_block("if.else")
        self.builder.cond_br(cond, then_block, else_block)

        self.builder.position_at_end(then_block)
        self._gen_body(stmt.body)
        if not self.builder.block.is_terminated:
            self.builder.br(merge)

        if stmt.orelse:
            self.builder.position_at_end(else_block)
            self._gen_body(stmt.orelse)
            if not self.builder.block.is_terminated:
                self.builder.br(merge)

        self.builder.position_at_end(merge)

    def _gen_while(self, stmt: M.WhileStmt) -> None:
        header = self._new_block(f"loop{stmt.loop_id}.header")
        body = self._new_block(f"loop{stmt.loop_id}.body")
        end = self._new_block(f"loop{stmt.loop_id}.end")
        self._loop_headers[stmt.loop_id] = header
        self.builder.br(header)

        self.builder.position_at_end(header)
        cond = self._gen_condition(stmt.cond)
        self.builder.cond_br(cond, body, end)

        self.builder.position_at_end(body)
        self._break_targets.append(end)
        self._continue_targets.append(header)
        self._gen_body(stmt.body)
        self._break_targets.pop()
        self._continue_targets.pop()
        if not self.builder.block.is_terminated:
            self.builder.br(header)

        self.builder.position_at_end(end)

    def _gen_for(self, stmt: M.ForStmt) -> None:
        # lower 'for v = lo:step:hi' (positive step) to a while loop
        lo, lo_cls = self._gen_expr(stmt.lo)
        lo = self._coerce(lo, lo_cls, DOUBLE)
        if stmt.step is not None:
            step, step_cls = self._gen_expr(stmt.step)
            step = self._coerce(step, step_cls, DOUBLE)
        else:
            step = ConstantFloat(T.f64, 1.0)
        hi, hi_cls = self._gen_expr(stmt.hi)
        hi = self._coerce(hi, hi_cls, DOUBLE)

        var_cls = self._classes[stmt.var]
        self.builder.store(self._coerce(lo, DOUBLE, var_cls),
                           self._slots[stmt.var])

        header = self._new_block(f"loop{stmt.loop_id}.header")
        body = self._new_block(f"loop{stmt.loop_id}.body")
        step_block = self._new_block(f"loop{stmt.loop_id}.step")
        end = self._new_block(f"loop{stmt.loop_id}.end")
        self._loop_headers[stmt.loop_id] = header
        self.builder.br(header)

        self.builder.position_at_end(header)
        current = self.builder.load(self._slots[stmt.var], stmt.var)
        current = self._coerce(current, var_cls, DOUBLE)
        # MATLAB ranges run while i<=hi for positive steps and i>=hi for
        # negative ones; select on the step's sign covers both
        ascending = self.builder.fcmp("ole", current, hi, "for.le")
        descending = self.builder.fcmp("oge", current, hi, "for.ge")
        step_pos = self.builder.fcmp("oge", step,
                                     ConstantFloat(T.f64, 0.0), "step.pos")
        cond = self.builder.select(step_pos, ascending, descending,
                                   "for.cond")
        self.builder.cond_br(cond, body, end)

        self.builder.position_at_end(body)
        self._break_targets.append(end)
        self._continue_targets.append(step_block)
        self._gen_body(stmt.body)
        self._break_targets.pop()
        self._continue_targets.pop()
        if not self.builder.block.is_terminated:
            self.builder.br(step_block)

        self.builder.position_at_end(step_block)
        value = self.builder.load(self._slots[stmt.var], stmt.var)
        value = self._coerce(value, var_cls, DOUBLE)
        bumped = self.builder.fadd(value, step, f"{stmt.var}.next")
        self.builder.store(self._coerce(bumped, DOUBLE, var_cls),
                           self._slots[stmt.var])
        self.builder.br(header)

        self.builder.position_at_end(end)

    # -- expressions ---------------------------------------------------------------

    def _gen_condition(self, expr: M.Expr) -> Value:
        value, cls = self._gen_expr(expr)
        if cls == DOUBLE:
            zero = ConstantFloat(T.f64, 0.0)
            return self.builder.fcmp("one", value, zero, "tobool")
        truthy = declare_runtime(self.module, "mc_truthy")
        return self.builder.call(truthy, [self._coerce(value, cls, BOXED)],
                                 "tobool")

    def _gen_expr(self, expr: M.Expr) -> Tuple[Value, str]:
        if isinstance(expr, M.Num):
            return ConstantFloat(T.f64, expr.value), DOUBLE
        if isinstance(expr, M.Ident):
            cls = self._classes.get(expr.name)
            if cls is None or expr.name not in self._slots:
                raise McCompileError(f"undefined variable {expr.name!r}",
                                     expr.line)
            return self.builder.load(self._slots[expr.name], expr.name), cls
        if isinstance(expr, M.FuncHandle):
            return self._handle_constant(expr.name), HANDLE
        if isinstance(expr, M.UnaryOp):
            return self._gen_unary(expr)
        if isinstance(expr, M.BinOp):
            return self._gen_binop(expr)
        if isinstance(expr, M.CallExpr):
            return self._gen_call(expr)
        if isinstance(expr, M.FevalExpr):
            return self._gen_feval(expr)
        raise McCompileError(f"cannot compile {type(expr).__name__}",
                             expr.line)

    def _handle_constant(self, name: str) -> Value:
        """An ``@name`` literal, baked in as an object-table handle."""
        cached = self._handle_consts.get(name)
        if cached is not None:
            return cached
        from ..ir.constexpr import ConstantIntToPtr
        from .runtime import McFunctionHandleValue

        handle_id = self._object_table().intern(McFunctionHandleValue(name))
        const = ConstantIntToPtr(I8P, handle_id)
        self._handle_consts[name] = const
        return const

    def _object_table(self):
        if self._object_table_ref is None:
            raise McCompileError(
                "function handles require an engine object table; "
                "construct IIRCompiler via McVM"
            )
        return self._object_table_ref

    def _gen_unary(self, expr: M.UnaryOp) -> Tuple[Value, str]:
        value, cls = self._gen_expr(expr.operand)
        if expr.op == "-":
            if cls == DOUBLE:
                return self.builder.fneg(value, "neg"), DOUBLE
            neg = declare_runtime(self.module, "mc_neg")
            return (
                self.builder.call(neg, [self._coerce(value, cls, BOXED)],
                                  "neg"),
                BOXED,
            )
        if expr.op == "~":
            if cls == DOUBLE:
                zero = ConstantFloat(T.f64, 0.0)
                is_zero = self.builder.fcmp("oeq", value, zero, "not")
                return (
                    self.builder.select(
                        is_zero, ConstantFloat(T.f64, 1.0),
                        ConstantFloat(T.f64, 0.0), "not.val",
                    ),
                    DOUBLE,
                )
            lnot = declare_runtime(self.module, "mc_logical_not")
            return (
                self.builder.call(lnot, [self._coerce(value, cls, BOXED)],
                                  "not"),
                BOXED,
            )
        raise McCompileError(f"unknown unary {expr.op!r}", expr.line)

    _CMP_PREDICATES = {"<": "olt", "<=": "ole", ">": "ogt", ">=": "oge",
                       "==": "oeq", "~=": "one"}
    _CMP_RUNTIME = {"<": "mc_cmp_lt", "<=": "mc_cmp_le", ">": "mc_cmp_gt",
                    ">=": "mc_cmp_ge", "==": "mc_cmp_eq", "~=": "mc_cmp_ne"}
    _ARITH_RUNTIME = {"+": "mc_add", "-": "mc_sub", "*": "mc_mul",
                      "/": "mc_div", "^": "mc_pow"}

    def _gen_binop(self, expr: M.BinOp) -> Tuple[Value, str]:
        lhs, lcls = self._gen_expr(expr.lhs)
        rhs, rcls = self._gen_expr(expr.rhs)
        op = expr.op
        fast = lcls == DOUBLE and rcls == DOUBLE

        if op in ("+", "-", "*", "/", "^"):
            if fast:
                if op == "^":
                    pow_fn = declare_builtin(self.module, "power")
                    return self.builder.call(pow_fn, [lhs, rhs], "pow"), DOUBLE
                method = {"+": self.builder.fadd, "-": self.builder.fsub,
                          "*": self.builder.fmul, "/": self.builder.fdiv}[op]
                return method(lhs, rhs, "arith"), DOUBLE
            runtime = declare_runtime(self.module, self._ARITH_RUNTIME[op])
            return (
                self.builder.call(
                    runtime,
                    [self._coerce(lhs, lcls, BOXED),
                     self._coerce(rhs, rcls, BOXED)],
                    "generic",
                ),
                BOXED,
            )

        if op in self._CMP_PREDICATES:
            if fast:
                flag = self.builder.fcmp(self._CMP_PREDICATES[op], lhs, rhs,
                                         "cmp")
                return (
                    self.builder.select(
                        flag, ConstantFloat(T.f64, 1.0),
                        ConstantFloat(T.f64, 0.0), "cmp.val",
                    ),
                    DOUBLE,
                )
            runtime = declare_runtime(self.module, self._CMP_RUNTIME[op])
            return (
                self.builder.call(
                    runtime,
                    [self._coerce(lhs, lcls, BOXED),
                     self._coerce(rhs, rcls, BOXED)],
                    "generic.cmp",
                ),
                BOXED,
            )

        if op in ("&&", "&", "||", "|"):
            if fast:
                zero = ConstantFloat(T.f64, 0.0)
                lflag = self.builder.fcmp("one", lhs, zero, "ltrue")
                rflag = self.builder.fcmp("one", rhs, zero, "rtrue")
                combined = (self.builder.and_(lflag, rflag, "logic")
                            if op in ("&&", "&")
                            else self.builder.or_(lflag, rflag, "logic"))
                return (
                    self.builder.select(
                        combined, ConstantFloat(T.f64, 1.0),
                        ConstantFloat(T.f64, 0.0), "logic.val",
                    ),
                    DOUBLE,
                )
            name = ("mc_logical_and" if op in ("&&", "&")
                    else "mc_logical_or")
            runtime = declare_runtime(self.module, name)
            return (
                self.builder.call(
                    runtime,
                    [self._coerce(lhs, lcls, BOXED),
                     self._coerce(rhs, rcls, BOXED)],
                    "generic.logic",
                ),
                BOXED,
            )
        raise McCompileError(f"unknown operator {op!r}", expr.line)

    def _gen_call(self, expr: M.CallExpr) -> Tuple[Value, str]:
        if expr.name in BUILTIN_FUNCTIONS:
            callee = declare_builtin(self.module, expr.name)
            args = []
            for arg_expr in expr.args:
                value, cls = self._gen_expr(arg_expr)
                args.append(self._coerce(value, cls, DOUBLE))
            if len(args) != len(callee.function_type.params):
                raise McCompileError(
                    f"{expr.name} expects "
                    f"{len(callee.function_type.params)} args", expr.line
                )
            return self.builder.call(callee, args, expr.name), DOUBLE
        if self.version_oracle is None:
            raise McCompileError(
                f"unknown function {expr.name!r} (no version oracle)",
                expr.line,
            )
        values: List[Value] = []
        classes: List[str] = []
        for arg_expr in expr.args:
            value, cls = self._gen_expr(arg_expr)
            values.append(value)
            classes.append(cls)
        version = self.version_oracle(expr.name, tuple(classes))
        args = [
            self._coerce(v, c, pc)
            for v, c, pc in zip(values, classes, version.info.arg_classes)
        ]
        result = self.builder.call(version.ir_function, args, expr.name)
        return result, version.info.return_class

    def _gen_feval(self, expr: M.FevalExpr) -> Tuple[Value, str]:
        target, target_cls = self._gen_expr(expr.target)
        target = self._coerce(target, target_cls, BOXED)
        boxed_args = []
        for arg_expr in expr.args:
            value, cls = self._gen_expr(arg_expr)
            boxed_args.append(self._coerce(value, cls, BOXED))
        dispatcher = declare_runtime(self.module,
                                     f"mc_feval_{len(boxed_args)}")
        result = self.builder.call(dispatcher, [target] + boxed_args,
                                   "feval")
        return result, BOXED

    # -- coercions --------------------------------------------------------------------

    def _coerce(self, value: Value, from_cls: str, to_cls: str) -> Value:
        if from_cls == to_cls:
            return value
        if to_cls == BOXED:
            if from_cls == DOUBLE:
                box = declare_runtime(self.module, "mc_box")
                return self.builder.call(box, [value], "box")
            return value  # HANDLE -> BOXED: both i8*
        if to_cls == DOUBLE:
            if from_cls in (BOXED, HANDLE):
                unbox = declare_runtime(self.module, "mc_unbox")
                return self.builder.call(unbox, [value], "unbox")
        if to_cls == HANDLE and from_cls == BOXED:
            return value
        raise McCompileError(f"cannot coerce {from_cls} to {to_cls}")
