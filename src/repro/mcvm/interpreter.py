"""IIR interpreter — McVM's fallback tier.

A direct evaluator over the IIR tree, used as the semantic oracle for
the compiled tiers and as the conceptual "interpreter to fall back to"
in deoptimization scenarios.  Values are Python floats plus
:class:`~repro.mcvm.runtime.McFunctionHandleValue` for handles.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from . import mcast as M
from .mctypes import BUILTIN_FUNCTIONS
from .runtime import McFunctionHandleValue


class McRuntimeError(Exception):
    pass


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    pass


_BUILTIN_IMPL = {
    "abs": abs,
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "sin": math.sin,
    "cos": math.cos,
    "floor": lambda x: float(math.floor(x)),
    "mod": math.fmod,
    "min": min,
    "max": max,
    "power": lambda a, b: a ** b,
}


class IIRInterpreter:
    """Evaluates IIR functions against a function registry."""

    def __init__(self, functions: Dict[str, M.McFunction]):
        self.functions = functions
        #: counts per (function, loop_id): the interpreter doubles as the
        #: profiling tier that discovers hot feval loops
        self.loop_counts: Dict[tuple, int] = {}

    def call(self, name: str, args: List[object]):
        function = self.functions.get(name)
        if function is None:
            raise McRuntimeError(f"undefined function {name!r}")
        if len(args) != len(function.params):
            raise McRuntimeError(
                f"{name} expects {len(function.params)} args, "
                f"got {len(args)}"
            )
        env: Dict[str, object] = dict(zip(function.params, args))
        try:
            self._exec_body(function, function.body, env)
        except _Return:
            pass
        if function.output is None:
            return 0.0
        return env.get(function.output, 0.0)

    # -- statements -----------------------------------------------------------

    def _exec_body(self, function: M.McFunction, body: List[M.Stmt],
                   env: Dict[str, object]) -> None:
        for stmt in body:
            self._exec(function, stmt, env)

    def _exec(self, function: M.McFunction, stmt: M.Stmt,
              env: Dict[str, object]) -> None:
        if isinstance(stmt, M.AssignStmt):
            env[stmt.name] = self._eval(stmt.value, env)
        elif isinstance(stmt, M.ExprStmt):
            self._eval(stmt.expr, env)
        elif isinstance(stmt, M.IfStmt):
            if self._truthy(self._eval(stmt.cond, env)):
                self._exec_body(function, stmt.body, env)
            elif stmt.orelse:
                self._exec_body(function, stmt.orelse, env)
        elif isinstance(stmt, M.WhileStmt):
            key = (function.name, stmt.loop_id)
            while self._truthy(self._eval(stmt.cond, env)):
                self.loop_counts[key] = self.loop_counts.get(key, 0) + 1
                try:
                    self._exec_body(function, stmt.body, env)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(stmt, M.ForStmt):
            lo = self._number(self._eval(stmt.lo, env))
            step = (self._number(self._eval(stmt.step, env))
                    if stmt.step is not None else 1.0)
            hi = self._number(self._eval(stmt.hi, env))
            key = (function.name, stmt.loop_id)
            value = lo
            while (value <= hi) if step >= 0 else (value >= hi):
                env[stmt.var] = value
                self.loop_counts[key] = self.loop_counts.get(key, 0) + 1
                try:
                    self._exec_body(function, stmt.body, env)
                except _Break:
                    break
                except _Continue:
                    pass
                value += step
        elif isinstance(stmt, M.BreakStmt):
            raise _Break()
        elif isinstance(stmt, M.ContinueStmt):
            raise _Continue()
        elif isinstance(stmt, M.ReturnStmt):
            raise _Return()
        else:
            raise McRuntimeError(f"cannot execute {type(stmt).__name__}")

    # -- expressions ---------------------------------------------------------------

    def _eval(self, expr: M.Expr, env: Dict[str, object]):
        if isinstance(expr, M.Num):
            return expr.value
        if isinstance(expr, M.Ident):
            try:
                return env[expr.name]
            except KeyError:
                raise McRuntimeError(
                    f"undefined variable {expr.name!r}"
                ) from None
        if isinstance(expr, M.FuncHandle):
            return McFunctionHandleValue(expr.name)
        if isinstance(expr, M.UnaryOp):
            value = self._eval(expr.operand, env)
            if expr.op == "-":
                return -self._number(value)
            if expr.op == "~":
                return 0.0 if self._truthy(value) else 1.0
            raise McRuntimeError(f"unknown unary {expr.op!r}")
        if isinstance(expr, M.BinOp):
            return self._eval_binop(expr, env)
        if isinstance(expr, M.CallExpr):
            if expr.name in BUILTIN_FUNCTIONS:
                impl = _BUILTIN_IMPL[expr.name]
                args = [self._number(self._eval(a, env)) for a in expr.args]
                return float(impl(*args))
            args = [self._eval(a, env) for a in expr.args]
            return self.call(expr.name, args)
        if isinstance(expr, M.FevalExpr):
            target = self._eval(expr.target, env)
            if not isinstance(target, McFunctionHandleValue):
                raise McRuntimeError(f"feval target {target!r} is not a handle")
            args = [self._eval(a, env) for a in expr.args]
            return self.call(target.name, args)
        raise McRuntimeError(f"cannot evaluate {type(expr).__name__}")

    def _eval_binop(self, expr: M.BinOp, env: Dict[str, object]):
        a = self._eval(expr.lhs, env)
        b = self._eval(expr.rhs, env)
        op = expr.op
        if op in ("&&", "&"):
            return 1.0 if self._truthy(a) and self._truthy(b) else 0.0
        if op in ("||", "|"):
            return 1.0 if self._truthy(a) or self._truthy(b) else 0.0
        x = self._number(a)
        y = self._number(b)
        if op == "+":
            return x + y
        if op == "-":
            return x - y
        if op == "*":
            return x * y
        if op == "/":
            return x / y
        if op == "^":
            return x ** y
        table = {"<": x < y, "<=": x <= y, ">": x > y, ">=": x >= y,
                 "==": x == y, "~=": x != y}
        if op in table:
            return 1.0 if table[op] else 0.0
        raise McRuntimeError(f"unknown operator {op!r}")

    @staticmethod
    def _number(value) -> float:
        if isinstance(value, float):
            return value
        if isinstance(value, int):
            return float(value)
        raise McRuntimeError(f"expected a number, got {value!r}")

    def _truthy(self, value) -> bool:
        return self._number(value) != 0.0
