"""Type classes and type inference for the mini-McVM.

McVM's "function versioning mechanism based on type specialization ...
the main driver for generating efficient code" (paper Section 4): each
MATLAB function is compiled once per observed argument-type signature,
and a per-version inference assigns every variable a storage class:

* ``DOUBLE`` — a known scalar double, kept unboxed in an ``f64``;
* ``HANDLE`` — a function handle, kept as an opaque ``i8*``;
* ``BOXED``  — statically unknown (the paper's boxed "UNK" values,
  handled through slow generic instructions).

The key dynamics the paper exploits: the result of ``feval`` is
``BOXED`` (the callee is unknown to the static analysis), and boxedness
propagates — so a loop accumulating through ``feval`` degrades to generic
code.  Replacing the feval with a direct call lets inference keep
everything ``DOUBLE``, which is exactly what the IIR-level OSR
specialization wins back.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .mcast import (
    AssignStmt,
    BinOp,
    BreakStmt,
    CallExpr,
    ContinueStmt,
    Expr,
    ExprStmt,
    FevalExpr,
    ForStmt,
    FuncHandle,
    Ident,
    IfStmt,
    McFunction,
    Num,
    ReturnStmt,
    Stmt,
    UnaryOp,
    WhileStmt,
)

DOUBLE = "double"
HANDLE = "handle"
BOXED = "boxed"

#: builtins always consume and produce scalars
BUILTIN_FUNCTIONS = {
    "abs", "sqrt", "exp", "log", "sin", "cos", "floor", "mod",
    "min", "max", "power",
}


class McTypeError(Exception):
    """Raised when inference meets an impossible construct."""


def join(a: str, b: str) -> str:
    """Least upper bound of two storage classes."""
    if a == b:
        return a
    return BOXED


class TypeInfo:
    """Result of inference for one function version."""

    def __init__(self, function: McFunction, arg_classes: Tuple[str, ...],
                 var_classes: Dict[str, str], return_class: str):
        self.function = function
        self.arg_classes = arg_classes
        self.var_classes = var_classes
        self.return_class = return_class

    def class_of(self, name: str) -> str:
        return self.var_classes.get(name, BOXED)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<TypeInfo {self.function.name}{self.arg_classes} "
            f"-> {self.return_class}>"
        )


class TypeInference:
    """Flow-insensitive per-variable fixpoint inference.

    ``call_oracle(name, arg_classes) -> return class`` resolves direct
    calls to other user functions (the VM supplies it, compiling callee
    versions recursively); builtins are always DOUBLE.
    """

    def __init__(self, call_oracle=None):
        self.call_oracle = call_oracle

    def infer(self, function: McFunction,
              arg_classes: Sequence[str]) -> TypeInfo:
        if len(arg_classes) != len(function.params):
            raise McTypeError(
                f"{function.name} expects {len(function.params)} args, "
                f"got {len(arg_classes)}"
            )
        classes: Dict[str, str] = dict(zip(function.params, arg_classes))
        changed = True
        while changed:
            changed = False
            for stmt in _walk(function.body):
                if isinstance(stmt, AssignStmt):
                    rhs = self.expr_class(stmt.value, classes)
                    current = classes.get(stmt.name)
                    new = rhs if current is None else join(current, rhs)
                    if new != current:
                        classes[stmt.name] = new
                        changed = True
                elif isinstance(stmt, ForStmt):
                    current = classes.get(stmt.var)
                    new = DOUBLE if current is None else join(current, DOUBLE)
                    if new != current:
                        classes[stmt.var] = new
                        changed = True
        if function.output is not None:
            return_class = classes.get(function.output, DOUBLE)
        else:
            return_class = DOUBLE
        return TypeInfo(function, tuple(arg_classes), classes, return_class)

    def expr_class(self, expr: Expr, classes: Dict[str, str]) -> str:
        if isinstance(expr, Num):
            return DOUBLE
        if isinstance(expr, Ident):
            return classes.get(expr.name, BOXED)
        if isinstance(expr, FuncHandle):
            return HANDLE
        if isinstance(expr, UnaryOp):
            inner = self.expr_class(expr.operand, classes)
            return DOUBLE if inner == DOUBLE else BOXED
        if isinstance(expr, BinOp):
            lhs = self.expr_class(expr.lhs, classes)
            rhs = self.expr_class(expr.rhs, classes)
            if lhs == DOUBLE and rhs == DOUBLE:
                return DOUBLE
            return BOXED
        if isinstance(expr, CallExpr):
            if expr.name in BUILTIN_FUNCTIONS:
                return DOUBLE
            if self.call_oracle is not None:
                arg_classes = tuple(
                    self.expr_class(a, classes) for a in expr.args
                )
                return self.call_oracle(expr.name, arg_classes)
            return BOXED
        if isinstance(expr, FevalExpr):
            # the feval target is statically unknown: its value must be
            # treated as boxed (the whole point of the case study)
            return BOXED
        raise McTypeError(f"cannot classify {type(expr).__name__}")


def _walk(body: List[Stmt]):
    for stmt in body:
        yield stmt
        if isinstance(stmt, IfStmt):
            yield from _walk(stmt.body)
            if stmt.orelse:
                yield from _walk(stmt.orelse)
        elif isinstance(stmt, (WhileStmt, ForStmt)):
            yield from _walk(stmt.body)
