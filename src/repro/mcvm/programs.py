"""Q4 benchmark programs (paper Section 5.1).

The three ODE solvers come from Recktenwald's *Numerical Methods with
MATLAB* — they solve an ordinary differential equation for heat-treating
simulation with the Euler, midpoint and Runge-Kutta methods — and
``sim_anl`` minimizes the six-hump camelback function by simulated
annealing.  All four take the function to integrate/minimize as a
``feval`` target inside their hot loop, which is exactly the pattern the
feval optimizer specializes.

Each benchmark has two sources: the feval version and the "direct by
hand" version in which every ``feval`` call was replaced with a direct
call — the paper's upper-bound configuration (Table 4, last column).
"""

from __future__ import annotations

from typing import Callable, Dict, NamedTuple, Tuple

#: the ODE right-hand side: heat treating (Newton cooling toward 20 C)
_RHS = """
function dydt = rhsHeat(t, y)
  dydt = -0.25 * (y - 20.0);
end
"""

ODE_EULER = _RHS + """
function w = odeEuler(diffeq, tn, h, y0)
  t = 0.0;
  w = y0;
  while t < tn
    w = w + h * feval(diffeq, t, w);
    t = t + h;
  end
end

function r = benchmark(steps)
  h = 0.001;
  r = odeEuler(@rhsHeat, steps * h, h, 80.0);
end
"""

ODE_EULER_DIRECT = _RHS + """
function w = odeEuler(diffeq, tn, h, y0)
  t = 0.0;
  w = y0;
  while t < tn
    w = w + h * rhsHeat(t, w);
    t = t + h;
  end
end

function r = benchmark(steps)
  h = 0.001;
  r = odeEuler(@rhsHeat, steps * h, h, 80.0);
end
"""

ODE_MIDPT = _RHS + """
function w = odeMidpt(diffeq, tn, h, y0)
  t = 0.0;
  w = y0;
  h2 = h / 2.0;
  while t < tn
    k1 = feval(diffeq, t, w);
    k2 = feval(diffeq, t + h2, w + h2 * k1);
    w = w + h * k2;
    t = t + h;
  end
end

function r = benchmark(steps)
  h = 0.001;
  r = odeMidpt(@rhsHeat, steps * h, h, 80.0);
end
"""

ODE_MIDPT_DIRECT = _RHS + """
function w = odeMidpt(diffeq, tn, h, y0)
  t = 0.0;
  w = y0;
  h2 = h / 2.0;
  while t < tn
    k1 = rhsHeat(t, w);
    k2 = rhsHeat(t + h2, w + h2 * k1);
    w = w + h * k2;
    t = t + h;
  end
end

function r = benchmark(steps)
  h = 0.001;
  r = odeMidpt(@rhsHeat, steps * h, h, 80.0);
end
"""

ODE_RK4 = _RHS + """
function w = odeRK4(diffeq, tn, h, y0)
  t = 0.0;
  w = y0;
  h2 = h / 2.0;
  h6 = h / 6.0;
  while t < tn
    k1 = feval(diffeq, t, w);
    k2 = feval(diffeq, t + h2, w + h2 * k1);
    k3 = feval(diffeq, t + h2, w + h2 * k2);
    k4 = feval(diffeq, t + h, w + h * k3);
    w = w + h6 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
    t = t + h;
  end
end

function r = benchmark(steps)
  h = 0.001;
  r = odeRK4(@rhsHeat, steps * h, h, 80.0);
end
"""

ODE_RK4_DIRECT = _RHS + """
function w = odeRK4(diffeq, tn, h, y0)
  t = 0.0;
  w = y0;
  h2 = h / 2.0;
  h6 = h / 6.0;
  while t < tn
    k1 = rhsHeat(t, w);
    k2 = rhsHeat(t + h2, w + h2 * k1);
    k3 = rhsHeat(t + h2, w + h2 * k2);
    k4 = rhsHeat(t + h, w + h * k3);
    w = w + h6 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
    t = t + h;
  end
end

function r = benchmark(steps)
  h = 0.001;
  r = odeRK4(@rhsHeat, steps * h, h, 80.0);
end
"""

_CAMELBACK = """
function y = camelback(x1, x2)
  y = (4.0 - 2.1*x1^2 + (x1^4)/3.0)*x1^2 + x1*x2 + (-4.0 + 4.0*x2^2)*x2^2;
end
"""

SIM_ANL = _CAMELBACK + """
function fb = sim_anl(f, maxiter)
  seed = 12345.0;
  bx1 = 0.5;
  bx2 = 0.5;
  fb = feval(f, bx1, bx2);
  cx1 = bx1;
  cx2 = bx2;
  fc = fb;
  T = 1.0;
  i = 0.0;
  while i < maxiter
    seed = mod(seed * 1103.0 + 12345.0, 2147483.0);
    r1 = seed / 2147483.0;
    seed = mod(seed * 1103.0 + 12345.0, 2147483.0);
    r2 = seed / 2147483.0;
    nx1 = cx1 + (r1 - 0.5) * T;
    nx2 = cx2 + (r2 - 0.5) * T;
    fn = feval(f, nx1, nx2);
    if fn < fc
      cx1 = nx1;
      cx2 = nx2;
      fc = fn;
      if fn < fb
        bx1 = nx1;
        bx2 = nx2;
        fb = fn;
      end
    else
      seed = mod(seed * 1103.0 + 12345.0, 2147483.0);
      r3 = seed / 2147483.0;
      if r3 < exp((fc - fn) / T)
        cx1 = nx1;
        cx2 = nx2;
        fc = fn;
      end
    end
    T = T * 0.9995;
    i = i + 1.0;
  end
end

function r = benchmark(steps)
  r = sim_anl(@camelback, steps);
end
"""

SIM_ANL_DIRECT = _CAMELBACK + """
function fb = sim_anl(f, maxiter)
  seed = 12345.0;
  bx1 = 0.5;
  bx2 = 0.5;
  fb = camelback(bx1, bx2);
  cx1 = bx1;
  cx2 = bx2;
  fc = fb;
  T = 1.0;
  i = 0.0;
  while i < maxiter
    seed = mod(seed * 1103.0 + 12345.0, 2147483.0);
    r1 = seed / 2147483.0;
    seed = mod(seed * 1103.0 + 12345.0, 2147483.0);
    r2 = seed / 2147483.0;
    nx1 = cx1 + (r1 - 0.5) * T;
    nx2 = cx2 + (r2 - 0.5) * T;
    fn = camelback(nx1, nx2);
    if fn < fc
      cx1 = nx1;
      cx2 = nx2;
      fc = fn;
      if fn < fb
        bx1 = nx1;
        bx2 = nx2;
        fb = fn;
      end
    else
      seed = mod(seed * 1103.0 + 12345.0, 2147483.0);
      r3 = seed / 2147483.0;
      if r3 < exp((fc - fn) / T)
        cx1 = nx1;
        cx2 = nx2;
        fc = fn;
      end
    end
    T = T * 0.9995;
    i = i + 1.0;
  end
end

function r = benchmark(steps)
  r = sim_anl(@camelback, steps)
end
"""


class McBenchmark(NamedTuple):
    name: str           #: paper's benchmark name
    source: str         #: feval version
    direct_source: str  #: feval replaced by hand with direct calls
    entry: str          #: entry function (takes a step count)
    steps: int          #: standard workload
    hot_function: str   #: the function containing the feval loop


Q4_BENCHMARKS: Dict[str, McBenchmark] = {
    "odeEuler": McBenchmark(
        "odeEuler", ODE_EULER, ODE_EULER_DIRECT, "benchmark", 25000,
        "odeEuler",
    ),
    "odeMidpt": McBenchmark(
        "odeMidpt", ODE_MIDPT, ODE_MIDPT_DIRECT, "benchmark", 15000,
        "odeMidpt",
    ),
    "odeRK4": McBenchmark(
        "odeRK4", ODE_RK4, ODE_RK4_DIRECT, "benchmark", 10000,
        "odeRK4",
    ),
    "sim_anl": McBenchmark(
        "sim_anl", SIM_ANL, SIM_ANL_DIRECT, "benchmark", 12000,
        "sim_anl",
    ),
}


def q4_order():
    """Table 4 row order."""
    return [Q4_BENCHMARKS[n] for n in ("odeEuler", "odeMidpt", "odeRK4",
                                       "sim_anl")]
