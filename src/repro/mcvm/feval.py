"""feval optimization via OSR (paper Section 4.2).

Implements the four components the paper adds to McVM:

1. **Analysis pass** (:func:`find_feval_opportunities`) — walks a
   function's IIR and marks loops whose body contains
   ``feval(p, ...)`` where ``p`` is a read-only parameter of the
   enclosing function (the profitable, safely specializable case).
2. **Variable-map tracking** — :class:`FevalOSREnv` snapshots the IIR→IR
   variable map (name, storage class, IR type) at the OSR site; the
   :class:`~repro.mcvm.compiler.IIRCompiler` supplies the alloca map.
3. **OSR inserter** (:func:`insert_feval_osr_point`) — injects an open
   OSR point at the loop header: live IIR variables are loaded in the
   firing block and passed to the stub, the feval target's run-time value
   travels as the stub's ``val``, and everything is then promoted to SSA
   so the instrumented code matches Figure 5's shape.
4. **Optimizer** (:func:`make_feval_optimizer`) — the ``gen`` function
   fired at OSR time: clones the IIR, replaces ``feval(p, ...)`` with
   direct calls to the observed target ``g``, re-runs type inference
   (now free of the boxing poison), lowers to IR, builds the state
   mapping with box/unbox **compensation code** (Figure 9), asks OSRKit
   for the continuation, optimizes and caches it.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

from ..core.conditions import HotCounterCondition
from ..core.continuation import (
    OSRError,
    generate_continuation,
    required_landing_state,
)
from ..core.instrument import _emit_osr_check, build_open_osr_stub, split_block_at
from ..core.statemap import Computed, StateMapping
from ..ir import types as T
from ..ir.builder import IRBuilder
from ..ir.function import BasicBlock, Function
from ..ir.instructions import AllocaInst
from ..ir.values import ConstantFloat, ConstantNull, Value
from ..ir.verifier import verify_function
from ..obs import events as EV
from ..transform import optimize_function, promote_memory_to_registers
from . import mcast as M
from .compiler import CompiledVersion, ir_type_of
from .mctypes import BOXED, DOUBLE, HANDLE, TypeInfo
from .runtime import I8P, McFunctionHandleValue


class FevalOpportunity(NamedTuple):
    """A loop eligible for feval specialization."""

    loop_id: int
    handle_param: str       #: the parameter holding the feval target
    feval_count: int        #: feval sites on that parameter in the loop


def find_feval_opportunities(function: M.McFunction) -> List[FevalOpportunity]:
    """Component 1: the IIR analysis pass.

    A loop qualifies when its body contains ``feval(p, ...)`` with ``p``
    a parameter of ``function`` that is never reassigned anywhere in the
    function (so the observed target cannot change between OSR and the
    rest of the loop — this is why the IIR approach needs no guard)."""
    params = set(function.params)
    assigned = {
        stmt.name
        for stmt in M.walk_statements(function.body)
        if isinstance(stmt, M.AssignStmt)
    }
    for stmt in M.walk_statements(function.body):
        if isinstance(stmt, M.ForStmt):
            assigned.add(stmt.var)
    read_only_params = params - assigned

    opportunities: List[FevalOpportunity] = []
    for stmt in M.walk_statements(function.body):
        if not isinstance(stmt, (M.WhileStmt, M.ForStmt)):
            continue
        counts: Dict[str, int] = {}
        for inner in M.walk_statements(stmt.body):
            for expr in M.walk_expressions(inner):
                if isinstance(expr, M.FevalExpr) and isinstance(
                        expr.target, M.Ident):
                    if expr.target.name in read_only_params:
                        counts[expr.target.name] = (
                            counts.get(expr.target.name, 0) + 1
                        )
        # also scan the loop condition itself
        cond_exprs = []
        if isinstance(stmt, M.WhileStmt):
            cond_exprs = list(M.walk_expressions(stmt.cond))
        for expr in cond_exprs:
            if isinstance(expr, M.FevalExpr) and isinstance(
                    expr.target, M.Ident):
                if expr.target.name in read_only_params:
                    counts[expr.target.name] = (
                        counts.get(expr.target.name, 0) + 1
                    )
        for param, count in counts.items():
            opportunities.append(
                FevalOpportunity(stmt.loop_id, param, count)
            )
    return opportunities


class FevalOSREnv:
    """Component 2: the IIR↔IR state snapshot at an OSR site."""

    def __init__(self, function: M.McFunction, info: TypeInfo,
                 loop_id: int, handle_param: str,
                 var_order: List[str], var_classes: Dict[str, str],
                 var_types: List[T.Type]):
        self.function = function          #: IIR of the instrumented f
        self.info = info                  #: type info of the base version
        self.loop_id = loop_id
        self.handle_param = handle_param
        #: transfer order of live IIR variables (stub parameter order)
        self.var_order = var_order
        self.var_classes = var_classes
        self.var_types = var_types


class FevalOSRPoint(NamedTuple):
    function: Function
    stub: Function
    env: FevalOSREnv


def insert_feval_osr_point(
    vm,
    compiled: CompiledVersion,
    opportunity: FevalOpportunity,
    threshold: int = 2,
) -> FevalOSRPoint:
    """Component 3: inject the open OSR point at the hot loop's header.

    Must run on the alloca-form function (before mem2reg); it promotes
    everything to SSA itself once the machinery is in place.

    Insertion is traced as an ``osr.insert`` span (kind ``feval``) on the
    engine's telemetry.
    """
    from ..core.instrument import _telemetry_for

    func = compiled.ir_function
    engine = vm.engine
    with _telemetry_for(engine).span(EV.OSR_INSERT, function=func.name,
                                     kind="feval"):
        return _insert_feval_osr_point(vm, compiled, opportunity, threshold)


def _insert_feval_osr_point(
    vm,
    compiled: CompiledVersion,
    opportunity: FevalOpportunity,
    threshold: int,
) -> FevalOSRPoint:
    func = compiled.ir_function
    engine = vm.engine
    header = compiled.loop_headers.get(opportunity.loop_id)
    if header is None:
        raise OSRError(
            f"@{func.name} has no loop {opportunity.loop_id}"
        )
    location = header.instructions[header.first_non_phi_index]

    check_block = location.parent
    cont_block = split_block_at(location)
    condition = HotCounterCondition(threshold)
    osr_block = _emit_osr_check(func, check_block, cont_block, condition)

    # load the live IIR frame in the firing block; these loads become the
    # SSA values live at the OSR point once mem2reg runs
    builder = IRBuilder(osr_block)
    var_order = sorted(compiled.var_slots)
    loads: List[Value] = []
    var_types: List[T.Type] = []
    handle_value: Optional[Value] = None
    for name in var_order:
        slot = compiled.var_slots[name]
        value = builder.load(slot, f"{name}.live")
        loads.append(value)
        var_types.append(value.type)
        if name == opportunity.handle_param:
            handle_value = value
    if handle_value is None:
        raise OSRError(
            f"handle parameter {opportunity.handle_param!r} has no slot"
        )

    env = FevalOSREnv(
        vm.functions[_iir_name(func.name)], compiled.info,
        opportunity.loop_id, opportunity.handle_param,
        var_order, dict(compiled.info.var_classes), var_types,
    )
    generator = make_feval_optimizer(vm, env)
    stub = build_open_osr_stub(
        func, cont_block, loads, generator, env, engine,
    )

    call = builder.call(stub, [handle_value] + loads, "osr.res", tail=True)
    if func.return_type.is_void:
        builder.ret_void()
    else:
        builder.ret(call)
    condition.finalize(func)

    # now lift the whole function (frame slots + counter) into SSA form:
    # the OSR block's loads melt into the values live at the loop header
    promote_memory_to_registers(func, am=engine.analysis)
    func.assign_names()
    verify_function(func)
    engine.invalidate(func)
    return FevalOSRPoint(func, stub, env)


def _iir_name(ir_name: str) -> str:
    """Recover the MATLAB function name from a version's IR name."""
    return ir_name.split("__", 1)[0]


def specialize_feval_to_direct(function: M.McFunction, handle_param: str,
                               target_name: str) -> M.McFunction:
    """Component 4a: clone the IIR and replace ``feval(p, ...)`` with
    direct calls to the observed target."""
    clone = function.clone()
    clone.name = f"{function.name}_spec_{target_name}"

    def rewrite(expr: M.Expr) -> M.Expr:
        if isinstance(expr, M.FevalExpr):
            target = rewrite(expr.target)
            args = [rewrite(a) for a in expr.args]
            if isinstance(target, M.Ident) and target.name == handle_param:
                return M.CallExpr(target_name, args, expr.line)
            rewritten = M.FevalExpr(target, args, expr.line)
            return rewritten
        if isinstance(expr, M.UnaryOp):
            expr.operand = rewrite(expr.operand)
            return expr
        if isinstance(expr, M.BinOp):
            expr.lhs = rewrite(expr.lhs)
            expr.rhs = rewrite(expr.rhs)
            return expr
        if isinstance(expr, M.CallExpr):
            expr.args = [rewrite(a) for a in expr.args]
            return expr
        return expr

    def rewrite_body(body: List[M.Stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, M.AssignStmt):
                stmt.value = rewrite(stmt.value)
            elif isinstance(stmt, M.ExprStmt):
                stmt.expr = rewrite(stmt.expr)
            elif isinstance(stmt, M.IfStmt):
                stmt.cond = rewrite(stmt.cond)
                rewrite_body(stmt.body)
                if stmt.orelse:
                    rewrite_body(stmt.orelse)
            elif isinstance(stmt, M.WhileStmt):
                stmt.cond = rewrite(stmt.cond)
                rewrite_body(stmt.body)
            elif isinstance(stmt, M.ForStmt):
                stmt.lo = rewrite(stmt.lo)
                if stmt.step is not None:
                    stmt.step = rewrite(stmt.step)
                stmt.hi = rewrite(stmt.hi)
                rewrite_body(stmt.body)

    rewrite_body(clone.body)
    return clone


def make_feval_optimizer(vm, env: FevalOSREnv):
    """Component 4: the ``gen`` callback fired when the OSR triggers."""

    def optimizer(f_ir, osr_block, env_obj, val):
        tel = getattr(vm.engine, "telemetry", None)
        traced = tel is not None and tel.enabled
        # counting discipline: with tracing off, the same names still
        # tick as bare counters so feval activity stays visible in
        # metrics-only (production) runs
        metrics = getattr(vm.engine, "metrics", None)
        if not isinstance(val, McFunctionHandleValue):
            if traced:
                tel.event(EV.FEVAL_GUARD_FAIL, function=env.function.name,
                          reason=f"non-handle val {type(val).__name__}")
            elif metrics is not None:
                metrics.inc(EV.FEVAL_GUARD_FAIL)
            return _guard_fail_deopt(tel if traced else None)
        target_name = val.name
        cache_key = (env.function.name, env.loop_id, target_name,
                     env.info.arg_classes)
        cached = vm.code_cache.get(cache_key)
        if cached is not None:
            vm.stats["feval_cache_hits"] += 1
            if traced:
                tel.event(EV.FEVAL_CACHE_HIT, function=env.function.name,
                          target=target_name)
            elif metrics is not None:
                metrics.inc(EV.FEVAL_CACHE_HIT)
            return cached
        vm.stats["feval_optimizations"] += 1
        if traced:
            with tel.span(EV.FEVAL_SPECIALIZE, function=env.function.name,
                          target=target_name, loop=env.loop_id):
                return _specialize(target_name, cache_key, tel)
        if metrics is not None:
            metrics.inc(EV.FEVAL_SPECIALIZE)
        return _specialize(target_name, cache_key, None)

    def _specialize(target_name, cache_key, tel):
        # 4a: profile-driven IIR specialization
        specialized = specialize_feval_to_direct(
            env.function, env.handle_param, target_name
        )
        # re-run type inference: direct calls let the engine infer
        # concrete types where feval forced boxing
        info = vm.inference.infer(specialized, env.info.arg_classes)

        # 4b: lower the optimized IIR to IR (alloca form, no OSR inside),
        # forcing the base version's return ABI so the continuation is a
        # drop-in replacement
        variant = vm.compile_iir_raw(
            specialized, info,
            ir_name=vm.module.unique_name(specialized.name),
            forced_return_class=_return_abi(env),
        )
        landing = variant.loop_headers[env.loop_id]

        # state mapping with compensation: rebuild each live frame slot,
        # unboxing/boxing across representation changes (Figure 9)
        mapping = _build_state_mapping(vm, env, variant, landing)

        am = vm.engine.analysis
        continuation = generate_continuation(
            variant.ir_function, landing,
            _live_value_specs(env), mapping,
            name=f"{variant.ir_function.name}_cont",
            module=vm.module, telemetry=tel, am=am,
        )
        promote_memory_to_registers(continuation, am=am)
        optimize_function(continuation, "optimized", am=am)
        vm.engine.invalidate(continuation)

        # 4c: code caching
        vm.code_cache[cache_key] = continuation
        return continuation

    def _guard_fail_deopt(tel):
        """The guard_fail path: instead of unwinding to the interpreter
        tier, OSR-exit through the deopt manager into a continuation of
        the *unspecialized* version — execution resumes mid-loop with
        feval going through the generic boxed dispatcher, keeping all
        loop progress made so far."""
        engine = vm.engine
        engine._init_speculation()
        vm.stats["feval_deopts"] += 1
        guard_key = f"feval:{env.function.name}#loop{env.loop_id}"
        key = (guard_key, env.function.name, env.info.arg_classes)

        def build():
            variant = vm.compile_iir_raw(
                env.function, env.info,
                ir_name=vm.module.unique_name(f"{env.function.name}_deopt"),
                forced_return_class=_return_abi(env),
            )
            landing = variant.loop_headers[env.loop_id]
            mapping = _build_state_mapping(vm, env, variant, landing)
            am = engine.analysis
            continuation = generate_continuation(
                variant.ir_function, landing,
                _live_value_specs(env), mapping,
                name=f"{variant.ir_function.name}_cont",
                module=vm.module, telemetry=tel, am=am,
            )
            promote_memory_to_registers(continuation, am=am)
            optimize_function(continuation, "optimized", am=am)
            engine.invalidate(continuation)
            return continuation

        return engine.deopt_manager.external_exit(
            key, build, guard=guard_key, function=env.function.name,
        )

    return optimizer


def _return_abi(env: FevalOSREnv) -> str:
    return env.info.return_class


def _live_value_specs(env: FevalOSREnv) -> List[Value]:
    """Lightweight (name, type) carriers defining the continuation
    signature — it must match the stub's, built from the original live
    loads."""
    return [
        Value(ty, name) for name, ty in zip(env.var_order, env.var_types)
    ]


def _build_state_mapping(vm, env: FevalOSREnv, variant: CompiledVersion,
                         landing: BasicBlock) -> StateMapping:
    """Compensation code builder.

    Every value live at the landing block of the (alloca-form) variant is
    a frame slot; the compensation entry block allocates a fresh slot and
    fills it from the transferred live value, unboxing (``mc_unbox``,
    the stand-in for ``MatrixF64Obj::getScalarVal``) or boxing as the
    representation changed between the versions — or zero-initializing
    slots for variables that are live at L' but had no value at L.
    """
    from .runtime import declare_runtime

    index_of = {name: i for i, name in enumerate(env.var_order)}
    slot_names = {
        id(slot): name for name, slot in variant.var_slots.items()
    }
    mapping = StateMapping()

    for value in required_landing_state(variant.ir_function, landing,
                                        am=vm.engine.analysis):
        if not isinstance(value, AllocaInst):
            raise OSRError(
                f"unexpected non-alloca live value %{value.name} at "
                f"landing %{landing.name} of @{variant.ir_function.name}"
            )
        var_name = slot_names.get(id(value))
        if var_name is None:
            raise OSRError(
                f"landing-live alloca %{value.name} is not a frame slot"
            )
        variant_class = variant.info.var_classes[var_name]
        source_class = env.var_classes.get(var_name)
        source_index = index_of.get(var_name)
        mapping.set(value, Computed(
            _slot_rebuilder(vm, var_name, variant_class, source_class,
                            source_index),
            description=f"rebuild %{var_name} "
                        f"({source_class} -> {variant_class})",
        ))
    return mapping


def _slot_rebuilder(vm, var_name: str, variant_class: str,
                    source_class: Optional[str], source_index: Optional[int]):
    """Compensation emitter for one frame slot."""
    from .runtime import declare_runtime

    def emit(builder: IRBuilder, params):
        slot = builder.alloca(ir_type_of(variant_class), f"{var_name}.slot")
        if source_index is None or source_class is None:
            # live at L' but not at L: fresh default value
            if variant_class == DOUBLE:
                builder.store(ConstantFloat(T.f64, 0.0), slot)
            else:
                builder.store(ConstantNull(I8P), slot)
            return slot
        incoming = params[source_index]
        if variant_class == source_class or (
                variant_class in (BOXED, HANDLE)
                and source_class in (BOXED, HANDLE)):
            builder.store(incoming, slot)
        elif variant_class == DOUBLE and source_class in (BOXED, HANDLE):
            unbox = declare_runtime(vm.module, "mc_unbox")
            unboxed = builder.call(unbox, [incoming],
                                   f"castUNKtoMF64_{var_name}")
            builder.store(unboxed, slot)
        elif variant_class in (BOXED, HANDLE) and source_class == DOUBLE:
            box = declare_runtime(vm.module, "mc_box")
            boxed = builder.call(box, [incoming],
                                 f"castMF64toUNK_{var_name}")
            builder.store(boxed, slot)
        else:
            raise OSRError(
                f"cannot map %{var_name}: {source_class} -> {variant_class}"
            )
        return slot

    return emit
