"""Runtime support for the mini-McVM: boxed values and generic natives.

Boxed ("UNK") values travel through the IR as ``i8*`` handles pointing to
:class:`McBox`/:class:`McFunctionHandleValue` host objects — our stand-in
for McVM's heap-allocated ``MatrixF64Obj``.  Generic instructions become
calls to the ``mc_*`` natives registered here; type-specialized code
touches none of them, which is where the Q4 speedups come from.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List

from ..ir import types as T
from ..ir.function import Module
from ..ir.types import FunctionType
from ..vm.engine import ExecutionEngine
from ..vm.interpreter import Trap

I8P = T.ptr(T.i8)


class McBox:
    """A boxed scalar double (McVM's ``MatrixF64Obj``)."""

    __slots__ = ("value",)

    def __init__(self, value: float):
        self.value = float(value)

    def __repr__(self) -> str:  # pragma: no cover
        return f"McBox({self.value})"


class McFunctionHandleValue:
    """A first-class function handle (``@name``)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover
        return f"@{self.name}"


def unbox_to_float(value) -> float:
    if isinstance(value, McBox):
        return value.value
    if isinstance(value, float):
        return value
    if isinstance(value, int):
        return float(value)
    raise Trap(f"cannot convert {value!r} to a scalar double")


#: IR-level signatures of the mc_* runtime, declared on demand
RUNTIME_SIGNATURES: Dict[str, FunctionType] = {
    "mc_box": FunctionType(I8P, [T.f64]),
    "mc_unbox": FunctionType(T.f64, [I8P]),
    "mc_add": FunctionType(I8P, [I8P, I8P]),
    "mc_sub": FunctionType(I8P, [I8P, I8P]),
    "mc_mul": FunctionType(I8P, [I8P, I8P]),
    "mc_div": FunctionType(I8P, [I8P, I8P]),
    "mc_pow": FunctionType(I8P, [I8P, I8P]),
    "mc_neg": FunctionType(I8P, [I8P]),
    "mc_cmp_lt": FunctionType(I8P, [I8P, I8P]),
    "mc_cmp_le": FunctionType(I8P, [I8P, I8P]),
    "mc_cmp_gt": FunctionType(I8P, [I8P, I8P]),
    "mc_cmp_ge": FunctionType(I8P, [I8P, I8P]),
    "mc_cmp_eq": FunctionType(I8P, [I8P, I8P]),
    "mc_cmp_ne": FunctionType(I8P, [I8P, I8P]),
    "mc_logical_and": FunctionType(I8P, [I8P, I8P]),
    "mc_logical_or": FunctionType(I8P, [I8P, I8P]),
    "mc_logical_not": FunctionType(I8P, [I8P]),
    "mc_truthy": FunctionType(T.i1, [I8P]),
    "mc_handle_name_matches": FunctionType(T.i1, [I8P, I8P]),
}

#: feval dispatchers per arity: mc_feval_<n>(i8* target, i8* x n) -> i8*
MAX_FEVAL_ARITY = 8
for _arity in range(MAX_FEVAL_ARITY + 1):
    RUNTIME_SIGNATURES[f"mc_feval_{_arity}"] = FunctionType(
        I8P, [I8P] * (_arity + 1)
    )


def declare_runtime(module: Module, name: str):
    """Get-or-declare an mc_* runtime function in a module."""
    return module.declare_function(name, RUNTIME_SIGNATURES[name])


def install_runtime(engine: ExecutionEngine, vm) -> None:
    """Register the mc_* natives on an engine.

    ``vm`` is the owning :class:`~repro.mcvm.vm.McVM`; the feval
    dispatchers resolve and JIT-compile callees through it.
    """

    def _arith(name: str, op: Callable[[float, float], float]) -> None:
        def native(a, b):
            return McBox(op(unbox_to_float(a), unbox_to_float(b)))

        engine.add_native(name, native)

    engine.add_native("mc_box", lambda v: McBox(v))
    engine.add_native("mc_unbox", unbox_to_float)
    _arith("mc_add", lambda a, b: a + b)
    _arith("mc_sub", lambda a, b: a - b)
    _arith("mc_mul", lambda a, b: a * b)
    _arith("mc_div", lambda a, b: a / b)
    _arith("mc_pow", lambda a, b: a ** b)
    engine.add_native("mc_neg", lambda a: McBox(-unbox_to_float(a)))
    _arith("mc_cmp_lt", lambda a, b: 1.0 if a < b else 0.0)
    _arith("mc_cmp_le", lambda a, b: 1.0 if a <= b else 0.0)
    _arith("mc_cmp_gt", lambda a, b: 1.0 if a > b else 0.0)
    _arith("mc_cmp_ge", lambda a, b: 1.0 if a >= b else 0.0)
    _arith("mc_cmp_eq", lambda a, b: 1.0 if a == b else 0.0)
    _arith("mc_cmp_ne", lambda a, b: 1.0 if a != b else 0.0)
    _arith("mc_logical_and",
           lambda a, b: 1.0 if (a != 0.0 and b != 0.0) else 0.0)
    _arith("mc_logical_or",
           lambda a, b: 1.0 if (a != 0.0 or b != 0.0) else 0.0)
    engine.add_native(
        "mc_logical_not",
        lambda a: McBox(1.0 if unbox_to_float(a) == 0.0 else 0.0),
    )
    engine.add_native(
        "mc_truthy", lambda a: 1 if unbox_to_float(a) != 0.0 else 0
    )

    def handle_name_matches(value, name_box):
        if (isinstance(value, McFunctionHandleValue)
                and value.name == name_box.name):
            return 1
        tel = engine.telemetry
        if tel.enabled:
            from ..obs import events as EV
            observed = (value.name if isinstance(value, McFunctionHandleValue)
                        else type(value).__name__)
            tel.event(EV.FEVAL_GUARD_FAIL, expected=name_box.name,
                      observed=observed)
        return 0

    engine.add_native("mc_handle_name_matches", handle_name_matches)

    def make_feval(arity: int):
        def mc_feval(target, *args):
            if not isinstance(target, McFunctionHandleValue):
                raise Trap(f"feval target {target!r} is not a handle")
            return vm.dispatch_feval(target.name, list(args))

        return mc_feval

    for arity in range(MAX_FEVAL_ARITY + 1):
        engine.add_native(f"mc_feval_{arity}", make_feval(arity))

    # double-typed math builtins used by specialized code
    engine.add_native("mc_mod", math.fmod)
    engine.add_native("mc_min", min)
    engine.add_native("mc_max", max)


#: builtin name -> (native symbol, arity); all double-in/double-out
BUILTIN_NATIVES: Dict[str, tuple] = {
    "abs": ("fabs", 1),
    "sqrt": ("sqrt", 1),
    "exp": ("exp", 1),
    "log": ("log", 1),
    "sin": ("sin", 1),
    "cos": ("cos", 1),
    "floor": ("floor", 1),
    "mod": ("mc_mod", 2),
    "min": ("mc_min", 2),
    "max": ("mc_max", 2),
    "power": ("pow", 2),
}


def declare_builtin(module: Module, name: str):
    """Get-or-declare the f64 builtin for a MATLAB builtin name."""
    symbol, arity = BUILTIN_NATIVES[name]
    fnty = FunctionType(T.f64, [T.f64] * arity)
    return module.declare_function(symbol, fnty)
