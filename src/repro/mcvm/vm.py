"""The mini-McVM facade.

Owns the IIR function registry, the type-inference engine, the IIR→IR
compiler with type-based function versioning, the execution engine, the
feval dispatcher, and the OSR-based feval optimizer with its code cache.

Execution modes (the Q4 configurations):

* ``interp``      — IIR interpreter only (McVM's fallback tier);
* ``base``        — JIT-compiled, feval through the generic dispatcher;
* ``osr``         — like ``base`` plus open OSR points injected in
                    feval loops; when a loop gets hot the IIR-level
                    optimizer kicks in (the paper's new approach).

"Direct (by hand)" is simply ``base`` over a source whose feval calls
were textually replaced — see :mod:`repro.mcvm.programs`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.function import Module
from ..transform import optimize_function, promote_memory_to_registers
from ..vm import ExecutionEngine
from . import mcast as M
from .compiler import CompiledVersion, IIRCompiler
from .feval import (
    FevalOSRPoint,
    find_feval_opportunities,
    insert_feval_osr_point,
)
from .interpreter import IIRInterpreter, McRuntimeError
from .mctypes import BOXED, DOUBLE, HANDLE, TypeInference, TypeInfo
from .parser import parse_matlab
from .runtime import McBox, McFunctionHandleValue, install_runtime, unbox_to_float

#: short class codes used in version names, e.g. odeEuler__hddd
_CLASS_CODE = {DOUBLE: "d", HANDLE: "h", BOXED: "b"}


class McVM:
    """A self-contained MATLAB-subset virtual machine."""

    def __init__(self, source: str, enable_osr: bool = False,
                 osr_threshold: int = 2, telemetry=None):
        self.functions: Dict[str, M.McFunction] = {}
        for function in parse_matlab(source):
            if function.name in self.functions:
                raise McRuntimeError(f"duplicate function {function.name!r}")
            self.functions[function.name] = function
        self.enable_osr = enable_osr
        self.osr_threshold = osr_threshold
        self.module = Module("mcvm")
        self.engine = ExecutionEngine(self.module, tier="jit",
                                      telemetry=telemetry)
        #: the engine's telemetry (explicit or ambient) — feval events
        #: (``feval.specialize``/``feval.cache_hit``/``feval.guard_fail``)
        #: land here alongside the engine's own
        self.telemetry = self.engine.telemetry
        install_runtime(self.engine, self)
        self.inference = TypeInference(call_oracle=self._infer_oracle)
        self.interpreter = IIRInterpreter(self.functions)
        #: (name, arg_classes) -> CompiledVersion
        self._versions: Dict[Tuple[str, Tuple[str, ...]], CompiledVersion] = {}
        self._inference_stack: set = set()
        #: continuation cache of the feval optimizer (component 4c)
        self.code_cache: Dict[tuple, object] = {}
        #: OSR points injected so far
        self.osr_points: List[FevalOSRPoint] = []
        self.stats: Dict[str, int] = {
            "versions_compiled": 0,
            "feval_dispatches": 0,
            "feval_optimizations": 0,
            "feval_cache_hits": 0,
            "feval_deopts": 0,
            "osr_points": 0,
        }

    # -- inference plumbing ----------------------------------------------------

    def _infer_oracle(self, name: str, arg_classes: Tuple[str, ...]) -> str:
        """Return class of a direct call — compiles/infers the callee
        version on demand; recursion falls back to BOXED."""
        function = self.functions.get(name)
        if function is None:
            raise McRuntimeError(f"undefined function {name!r}")
        key = (name, tuple(arg_classes))
        if key in self._inference_stack:
            return BOXED
        self._inference_stack.add(key)
        try:
            return self.inference.infer(function, arg_classes).return_class
        finally:
            self._inference_stack.discard(key)

    # -- compilation -------------------------------------------------------------

    def compile_iir_raw(self, function: M.McFunction, info: TypeInfo,
                        ir_name: str,
                        forced_return_class: Optional[str] = None,
                        into=None) -> CompiledVersion:
        """Lower inferred IIR to alloca-form IR (no mem2reg, no OSR)."""
        compiler = IIRCompiler(
            self.module,
            version_oracle=self._version_oracle,
            object_table=self.engine.object_table,
            analysis_manager=self.engine.analysis,
        )
        self.stats["versions_compiled"] += 1
        return compiler.compile(function, info, ir_name,
                                forced_return_class=forced_return_class,
                                into=into)

    def _version_oracle(self, name: str,
                        arg_classes: Tuple[str, ...]) -> CompiledVersion:
        return self.compile_version(name, arg_classes)

    def compile_version(self, name: str, arg_classes: Tuple[str, ...]
                        ) -> CompiledVersion:
        """Get-or-compile the specialization of ``name`` for the given
        argument classes (McVM's function versioning)."""
        key = (name, tuple(arg_classes))
        cached = self._versions.get(key)
        if cached is not None:
            return cached
        function = self.functions.get(name)
        if function is None:
            raise McRuntimeError(f"undefined function {name!r}")
        info = self.inference.infer(function, arg_classes)
        code = "".join(_CLASS_CODE[c] for c in arg_classes)
        ir_name = self.module.unique_name(
            f"{name}__{code}" if code else name
        )
        # register a shell version *before* generating the body so that
        # recursive MATLAB functions (direct or mutual) can call their own
        # in-flight version without re-entering compilation
        shell = IIRCompiler.make_shell(info, ir_name, function.params)
        self.module.add_function(shell)
        compiled = CompiledVersion(shell, info, {}, {})
        self._versions[key] = compiled
        body = self.compile_iir_raw(function, info, ir_name, into=shell)
        compiled.var_slots.update(body.var_slots)
        compiled.loop_headers.update(body.loop_headers)

        instrumented = False
        if self.enable_osr:
            for opportunity in find_feval_opportunities(function):
                cls = info.var_classes.get(opportunity.handle_param)
                if cls in (HANDLE, BOXED):
                    self.osr_points.append(insert_feval_osr_point(
                        self, compiled, opportunity,
                        threshold=self.osr_threshold,
                    ))
                    self.stats["osr_points"] += 1
                    instrumented = True
        if not instrumented:
            promote_memory_to_registers(compiled.ir_function,
                                        am=self.engine.analysis)
            optimize_function(compiled.ir_function, "optimized",
                              am=self.engine.analysis)
            self.engine.invalidate(compiled.ir_function)
        return compiled

    # -- execution ------------------------------------------------------------------

    def dispatch_feval(self, name: str, boxed_args: List[object]):
        """The default feval dispatcher: resolve the target by name,
        get/JIT its all-boxed version, call it with boxed values."""
        self.stats["feval_dispatches"] += 1
        version = self.compile_version(name, (BOXED,) * len(boxed_args))
        result = self.engine.call(version.ir_function, boxed_args)
        if version.info.return_class == DOUBLE:
            return McBox(result)
        return result

    def run(self, name: str, *args: float) -> float:
        """Call a MATLAB function with scalar arguments (floats and
        ``@handle`` strings like ``"@rhs"``), returning a float."""
        arg_values: List[object] = []
        arg_classes: List[str] = []
        for arg in args:
            if isinstance(arg, str) and arg.startswith("@"):
                arg_values.append(McFunctionHandleValue(arg[1:]))
                arg_classes.append(HANDLE)
            else:
                arg_values.append(float(arg))
                arg_classes.append(DOUBLE)
        version = self.compile_version(name, tuple(arg_classes))
        result = self.engine.call(version.ir_function, arg_values)
        if version.info.return_class == DOUBLE:
            return float(result)
        return unbox_to_float(result)

    def run_interpreted(self, name: str, *args: float) -> float:
        """Run through the IIR interpreter (the fallback tier)."""
        arg_values: List[object] = []
        for arg in args:
            if isinstance(arg, str) and arg.startswith("@"):
                arg_values.append(McFunctionHandleValue(arg[1:]))
            else:
                arg_values.append(float(arg))
        result = self.interpreter.call(name, arg_values)
        return unbox_to_float(result)

    # -- cache control (Q4's JIT-vs-cached configurations) ----------------------------

    def clear_feval_caches(self) -> None:
        """Forget feval-related compiled artifacts so the next run pays
        generation again ("JIT" configurations)."""
        self.code_cache.clear()
        # drop all-boxed dispatcher targets
        for key in [k for k in self._versions if all(c == BOXED for c in k[1])
                    and k[1]]:
            version = self._versions.pop(key)
            self.engine._compiled.pop(version.ir_function.name, None)
