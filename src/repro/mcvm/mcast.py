"""IIR node definitions for the mini-McVM.

McVM lowers MATLAB source to IIR ("intermediate internal representation"),
a tree-shaped IR that keeps the high-level features of the language;
analyses (type inference, feval optimization) and the IIR→IR compiler all
work on this form.  Our IIR is a compact statement/expression tree with
enough structure for the paper's component 1 (the feval analysis pass
walks it) and component 4a (the optimizer clones it and replaces feval
calls with direct calls).
"""

from __future__ import annotations

import copy
from typing import List, Optional


class IIRNode:
    __slots__ = ("line",)

    def __init__(self, line: int):
        self.line = line

    def clone(self):
        """Deep copy — the feval optimizer specializes cloned IIR."""
        return copy.deepcopy(self)


# -- expressions -------------------------------------------------------------


class Expr(IIRNode):
    __slots__ = ()


class Num(Expr):
    __slots__ = ("value",)

    def __init__(self, value: float, line: int):
        super().__init__(line)
        self.value = float(value)


class Ident(Expr):
    __slots__ = ("name",)

    def __init__(self, name: str, line: int):
        super().__init__(line)
        self.name = name


class FuncHandle(Expr):
    """``@name`` — a handle to a named function."""

    __slots__ = ("name",)

    def __init__(self, name: str, line: int):
        super().__init__(line)
        self.name = name


class UnaryOp(Expr):
    """op in {'-', '~'}."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, line: int):
        super().__init__(line)
        self.op = op
        self.operand = operand


class BinOp(Expr):
    """op in {'+','-','*','/','^','<','<=','>','>=','==','~=','&&','||','&','|'}."""

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Expr, rhs: Expr, line: int):
        super().__init__(line)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class CallExpr(Expr):
    """A call of a named function or builtin: ``f(a, b)``."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: List[Expr], line: int):
        super().__init__(line)
        self.name = name
        self.args = args


class FevalExpr(Expr):
    """``feval(target, args...)`` — the paper's case-study construct."""

    __slots__ = ("target", "args")

    def __init__(self, target: Expr, args: List[Expr], line: int):
        super().__init__(line)
        self.target = target
        self.args = args


# -- statements -----------------------------------------------------------------


class Stmt(IIRNode):
    __slots__ = ()


class AssignStmt(Stmt):
    __slots__ = ("name", "value")

    def __init__(self, name: str, value: Expr, line: int):
        super().__init__(line)
        self.name = name
        self.value = value


class ExprStmt(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr: Expr, line: int):
        super().__init__(line)
        self.expr = expr


class IfStmt(Stmt):
    """if / elseif* / else chains are nested: ``orelse`` holds either the
    else body or a single nested IfStmt for elseif."""

    __slots__ = ("cond", "body", "orelse")

    def __init__(self, cond: Expr, body: List[Stmt],
                 orelse: Optional[List[Stmt]], line: int):
        super().__init__(line)
        self.cond = cond
        self.body = body
        self.orelse = orelse


class WhileStmt(Stmt):
    __slots__ = ("cond", "body", "loop_id")

    def __init__(self, cond: Expr, body: List[Stmt], line: int,
                 loop_id: int = -1):
        super().__init__(line)
        self.cond = cond
        self.body = body
        #: stable loop identifier assigned by the parser; the feval
        #: analysis pass and the OSR inserter use it to correlate IIR
        #: loops with IR loop-header blocks (paper component 2)
        self.loop_id = loop_id


class ForStmt(Stmt):
    """``for v = lo : step? : hi`` over scalars."""

    __slots__ = ("var", "lo", "step", "hi", "body", "loop_id")

    def __init__(self, var: str, lo: Expr, step: Optional[Expr], hi: Expr,
                 body: List[Stmt], line: int, loop_id: int = -1):
        super().__init__(line)
        self.var = var
        self.lo = lo
        self.step = step
        self.hi = hi
        self.body = body
        self.loop_id = loop_id


class BreakStmt(Stmt):
    __slots__ = ()


class ContinueStmt(Stmt):
    __slots__ = ()


class ReturnStmt(Stmt):
    __slots__ = ()


# -- top level ---------------------------------------------------------------------


class McFunction(IIRNode):
    """``function out = name(params) body end``."""

    __slots__ = ("name", "output", "params", "body")

    def __init__(self, name: str, output: Optional[str], params: List[str],
                 body: List[Stmt], line: int):
        super().__init__(line)
        self.name = name
        self.output = output  # None for procedures
        self.params = params
        self.body = body

    def __repr__(self) -> str:  # pragma: no cover
        return f"<McFunction {self.name}({', '.join(self.params)})>"


def walk_statements(body: List[Stmt]):
    """Yield every statement in a body, recursively."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, IfStmt):
            yield from walk_statements(stmt.body)
            if stmt.orelse:
                yield from walk_statements(stmt.orelse)
        elif isinstance(stmt, WhileStmt):
            yield from walk_statements(stmt.body)
        elif isinstance(stmt, ForStmt):
            yield from walk_statements(stmt.body)


def walk_expressions(node):
    """Yield every expression under a statement or expression."""
    if isinstance(node, Expr):
        yield node
        if isinstance(node, UnaryOp):
            yield from walk_expressions(node.operand)
        elif isinstance(node, BinOp):
            yield from walk_expressions(node.lhs)
            yield from walk_expressions(node.rhs)
        elif isinstance(node, CallExpr):
            for arg in node.args:
                yield from walk_expressions(arg)
        elif isinstance(node, FevalExpr):
            yield from walk_expressions(node.target)
            for arg in node.args:
                yield from walk_expressions(arg)
    elif isinstance(node, AssignStmt):
        yield from walk_expressions(node.value)
    elif isinstance(node, ExprStmt):
        yield from walk_expressions(node.expr)
    elif isinstance(node, IfStmt):
        yield from walk_expressions(node.cond)
    elif isinstance(node, WhileStmt):
        yield from walk_expressions(node.cond)
    elif isinstance(node, ForStmt):
        yield from walk_expressions(node.lo)
        if node.step is not None:
            yield from walk_expressions(node.step)
        yield from walk_expressions(node.hi)
