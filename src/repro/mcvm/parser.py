"""Lexer and parser for the MATLAB subset the mini-McVM executes.

Covers what the Q4 benchmarks (Recktenwald ODE solvers, simulated
annealing) need: function definitions, assignments, if/elseif/else,
while, for over ranges, scalar arithmetic with ``^``, comparisons,
logical operators, function handles (``@f``), calls and ``feval``.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional

from .mcast import (
    AssignStmt,
    BinOp,
    BreakStmt,
    CallExpr,
    ContinueStmt,
    Expr,
    ExprStmt,
    FevalExpr,
    ForStmt,
    FuncHandle,
    Ident,
    IfStmt,
    McFunction,
    Num,
    ReturnStmt,
    Stmt,
    UnaryOp,
    WhileStmt,
)

KEYWORDS = {
    "function", "end", "if", "elseif", "else", "while", "for",
    "break", "continue", "return",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t]+)
  | (?P<comment>%[^\n]*)
  | (?P<ellipsis>\.\.\.[^\n]*\n)
  | (?P<newline>\n)
  | (?P<number>(?:\d+\.\d*|\.\d+|\d+)(?:[eE][-+]?\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><=|>=|==|~=|&&|\|\||[-+*/^<>=(),;:@&|~\[\]])
    """,
    re.VERBOSE | re.ASCII,
)


class McToken(NamedTuple):
    kind: str
    text: str
    line: int


class McParseError(Exception):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


def tokenize(source: str) -> List[McToken]:
    tokens: List[McToken] = []
    pos = 0
    line = 1
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise McParseError(f"unexpected character {source[pos]!r}", line)
        kind = match.lastgroup or ""
        text = match.group()
        pos = match.end()
        if kind == "newline":
            tokens.append(McToken("newline", "\n", line))
            line += 1
        elif kind == "ellipsis":
            line += 1  # continuation: swallow the newline
        elif kind in ("ws", "comment"):
            continue
        elif kind == "ident" and text in KEYWORDS:
            tokens.append(McToken("kw", text, line))
        else:
            tokens.append(McToken(kind, text, line))
    tokens.append(McToken("eof", "", line))
    return tokens


#: precedence table (higher binds tighter); ^ is right-associative
_PRECEDENCE = {
    "||": 1, "&&": 1, "|": 1, "&": 1,
    "<": 2, "<=": 2, ">": 2, ">=": 2, "==": 2, "~=": 2,
    "+": 3, "-": 3,
    "*": 4, "/": 4,
    "^": 5,
}


class McParser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0
        self._loop_counter = 0

    # -- stream -------------------------------------------------------------

    def peek(self, offset: int = 0) -> McToken:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> McToken:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def accept(self, text: str) -> bool:
        tok = self.peek()
        if tok.text == text and tok.kind in ("op", "kw"):
            self.next()
            return True
        return False

    def expect(self, text: str) -> McToken:
        tok = self.next()
        if tok.text != text:
            raise McParseError(f"expected {text!r}, found {tok.text!r}",
                               tok.line)
        return tok

    def skip_separators(self) -> None:
        while self.peek().kind == "newline" or self.peek().text == ";":
            self.next()

    # -- top level ---------------------------------------------------------------

    def parse_program(self) -> List[McFunction]:
        functions: List[McFunction] = []
        self.skip_separators()
        while self.peek().kind != "eof":
            functions.append(self.parse_function())
            self.skip_separators()
        return functions

    def parse_function(self) -> McFunction:
        start = self.expect("function")
        # 'function out = name(params)' or 'function name(params)'
        first = self.next()
        if first.kind != "ident":
            raise McParseError("expected identifier after 'function'",
                               first.line)
        output: Optional[str] = None
        if self.peek().text == "=":
            self.next()
            output = first.text
            name_tok = self.next()
            if name_tok.kind != "ident":
                raise McParseError("expected function name", name_tok.line)
            name = name_tok.text
        else:
            name = first.text
        params: List[str] = []
        if self.accept("("):
            if self.peek().text != ")":
                while True:
                    param = self.next()
                    if param.kind != "ident":
                        raise McParseError("expected parameter name",
                                           param.line)
                    params.append(param.text)
                    if not self.accept(","):
                        break
            self.expect(")")
        body = self.parse_body(("end",))
        self.expect("end")
        return McFunction(name, output, params, body, start.line)

    # -- statements -----------------------------------------------------------------

    def parse_body(self, terminators) -> List[Stmt]:
        statements: List[Stmt] = []
        self.skip_separators()
        while True:
            tok = self.peek()
            if tok.kind == "eof":
                raise McParseError(
                    f"unexpected end of input (missing {terminators[0]!r}?)",
                    tok.line,
                )
            if tok.kind == "kw" and tok.text in terminators:
                return statements
            statements.append(self.parse_statement())
            self.skip_separators()

    def parse_statement(self) -> Stmt:
        tok = self.peek()
        if tok.text == "if":
            return self._parse_if()
        if tok.text == "while":
            return self._parse_while()
        if tok.text == "for":
            return self._parse_for()
        if tok.text == "break":
            self.next()
            return BreakStmt(tok.line)
        if tok.text == "continue":
            self.next()
            return ContinueStmt(tok.line)
        if tok.text == "return":
            self.next()
            return ReturnStmt(tok.line)
        # assignment or expression statement
        if tok.kind == "ident" and self.peek(1).text == "=":
            name = self.next().text
            self.expect("=")
            value = self.parse_expression()
            return AssignStmt(name, value, tok.line)
        expr = self.parse_expression()
        return ExprStmt(expr, tok.line)

    def _parse_if(self) -> IfStmt:
        tok = self.expect("if")
        cond = self.parse_expression()
        body = self.parse_body(("elseif", "else", "end"))
        next_kw = self.peek().text
        if next_kw == "elseif":
            # treat 'elseif' as 'else { if }' by rewriting the keyword
            elif_tok = self.next()
            nested_cond = self.parse_expression()
            nested_body = self.parse_body(("elseif", "else", "end"))
            nested = self._continue_if(nested_cond, nested_body,
                                       elif_tok.line)
            return IfStmt(cond, body, [nested], tok.line)
        if next_kw == "else":
            self.next()
            orelse = self.parse_body(("end",))
            self.expect("end")
            return IfStmt(cond, body, orelse, tok.line)
        self.expect("end")
        return IfStmt(cond, body, None, tok.line)

    def _continue_if(self, cond: Expr, body: List[Stmt], line: int) -> IfStmt:
        next_kw = self.peek().text
        if next_kw == "elseif":
            elif_tok = self.next()
            nested_cond = self.parse_expression()
            nested_body = self.parse_body(("elseif", "else", "end"))
            nested = self._continue_if(nested_cond, nested_body,
                                       elif_tok.line)
            return IfStmt(cond, body, [nested], line)
        if next_kw == "else":
            self.next()
            orelse = self.parse_body(("end",))
            self.expect("end")
            return IfStmt(cond, body, orelse, line)
        self.expect("end")
        return IfStmt(cond, body, None, line)

    def _parse_while(self) -> WhileStmt:
        tok = self.expect("while")
        cond = self.parse_expression()
        body = self.parse_body(("end",))
        self.expect("end")
        self._loop_counter += 1
        return WhileStmt(cond, body, tok.line, loop_id=self._loop_counter)

    def _parse_for(self) -> ForStmt:
        tok = self.expect("for")
        var_tok = self.next()
        if var_tok.kind != "ident":
            raise McParseError("expected loop variable", var_tok.line)
        self.expect("=")
        lo = self.parse_range_part()
        self.expect(":")
        middle = self.parse_range_part()
        step: Optional[Expr] = None
        hi: Expr
        if self.accept(":"):
            step = middle
            hi = self.parse_range_part()
        else:
            hi = middle
        body = self.parse_body(("end",))
        self.expect("end")
        self._loop_counter += 1
        return ForStmt(var_tok.text, lo, step, hi, body, tok.line,
                       loop_id=self._loop_counter)

    def parse_range_part(self) -> Expr:
        """Range bounds bind tighter than ':' — parse at additive level."""
        return self.parse_binary(3)

    # -- expressions --------------------------------------------------------------------

    def parse_expression(self) -> Expr:
        return self.parse_binary(1)

    def parse_binary(self, min_prec: int) -> Expr:
        lhs = self.parse_unary()
        while True:
            tok = self.peek()
            prec = _PRECEDENCE.get(tok.text) if tok.kind == "op" else None
            if prec is None or prec < min_prec:
                return lhs
            self.next()
            if tok.text == "^":
                rhs = self.parse_binary(prec)  # right-associative
            else:
                rhs = self.parse_binary(prec + 1)
            lhs = BinOp(tok.text, lhs, rhs, tok.line)

    def parse_unary(self) -> Expr:
        tok = self.peek()
        if tok.text == "-":
            self.next()
            # MATLAB: unary minus binds looser than '^' (-x^2 == -(x^2))
            return UnaryOp("-", self.parse_binary(_PRECEDENCE["^"]),
                           tok.line)
        if tok.text == "~":
            self.next()
            return UnaryOp("~", self.parse_binary(_PRECEDENCE["^"]),
                           tok.line)
        if tok.text == "+":
            self.next()
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        tok = self.next()
        if tok.kind == "number":
            return Num(float(tok.text), tok.line)
        if tok.text == "@":
            name = self.next()
            if name.kind != "ident":
                raise McParseError("expected function name after '@'",
                                   name.line)
            return FuncHandle(name.text, tok.line)
        if tok.kind == "ident":
            if self.peek().text == "(":
                self.next()
                args: List[Expr] = []
                if self.peek().text != ")":
                    while True:
                        args.append(self.parse_expression())
                        if not self.accept(","):
                            break
                self.expect(")")
                if tok.text == "feval":
                    if not args:
                        raise McParseError("feval needs a target", tok.line)
                    return FevalExpr(args[0], args[1:], tok.line)
                return CallExpr(tok.text, args, tok.line)
            return Ident(tok.text, tok.line)
        if tok.text == "(":
            expr = self.parse_expression()
            self.expect(")")
            return expr
        raise McParseError(f"unexpected token {tok.text!r}", tok.line)


def parse_matlab(source: str) -> List[McFunction]:
    """Parse MATLAB-subset source into IIR functions."""
    return McParser(source).parse_program()
