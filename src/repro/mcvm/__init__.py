"""repro.mcvm — a mini-McVM: the MATLAB-subset VM of the Q4 case study.

Front-end (MATLAB subset → IIR), type inference with function versioning,
IIR→IR compiler with boxed/unboxed storage classes, IIR interpreter
fallback, the generic feval dispatcher, and the paper's OSR-based
IIR-level feval optimizer with compensation code.
"""

from .compiler import CompiledVersion, IIRCompiler, McCompileError
from .feval import (
    FevalOpportunity,
    find_feval_opportunities,
    insert_feval_osr_point,
    specialize_feval_to_direct,
)
from .interpreter import IIRInterpreter, McRuntimeError
from .mctypes import BOXED, DOUBLE, HANDLE, TypeInference, TypeInfo
from .parser import McParseError, parse_matlab
from .programs import Q4_BENCHMARKS, McBenchmark, q4_order
from .runtime import McBox, McFunctionHandleValue
from .vm import McVM

__all__ = [
    "McVM",
    "parse_matlab",
    "McParseError",
    "TypeInference",
    "TypeInfo",
    "DOUBLE",
    "HANDLE",
    "BOXED",
    "IIRCompiler",
    "CompiledVersion",
    "McCompileError",
    "IIRInterpreter",
    "McRuntimeError",
    "McBox",
    "McFunctionHandleValue",
    "find_feval_opportunities",
    "insert_feval_osr_point",
    "specialize_feval_to_direct",
    "FevalOpportunity",
    "Q4_BENCHMARKS",
    "McBenchmark",
    "q4_order",
]
