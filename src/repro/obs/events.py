"""The VM-wide event vocabulary and its well-formedness rules.

Every telemetry hook in the runtime emits one of the names below; the
vocabulary is closed so that traces stay comparable across PRs and the
exporters/tests can validate streams structurally.  Names are dotted
``subsystem.action`` pairs, grouped by the layer that emits them:

========================  =====  ==================================================
name                      kind   emitted when
========================  =====  ==================================================
``engine.invalidate``     event  a compiled form is dropped (body rewritten)
``tier.promote``          event  the tiered dispatcher promotes a function to JIT
``tier.demote``           event  an invalidation demotes a promoted function
``profile.call_hot``      event  the call counter crossed its threshold
``profile.backedge_hot``  event  the loop back-edge counter crossed its threshold
``jit.compile``           span   cold code generation (AST build + ``compile()``)
``codegen.build``         span   the pure AST-construction + bytecode-compile step
``jit.cache_hit``         event  warm materialization from the code cache
``jit.cache_miss``        event  the cache had no valid artifact
``decode.bailout``        event  the pre-decoder fell back to the tree-walker
``decode.fuse``           event  the decoder fused superinstructions in a function
``osr.insert``            span   an OSR point is inserted (resolved/open/mcosr/feval)
``osr.open_stub``         span   an open-OSR stub (Figure 6) is generated
``osr.continuation``      span   a continuation function (Figure 7) is generated
``osr.compensation``      event  compensation entries materialized in ``osr.entry``
``osr.fire``              event  an OSR point fired and control was transferred
``osr.state_size``        event  an OSR/guard site recorded its live-state slot count
``scalarize.split``       event  SROA split an aggregate alloca into scalar pieces
``feval.specialize``      span   the feval optimizer specializes + recompiles
``feval.cache_hit``       event  a fired feval OSR reused a cached continuation
``feval.guard_fail``      event  a feval guard/handle check failed at run time
``spec.specialize``       span   the speculation pass clones + specializes a function
``spec.dispatch``         event  a guard failure dispatched to a sibling continuation
``spec.respecialize``     event  a new stable profile produced another specialization
``spec.pinned``           event  the thrash limit pinned a function to baseline
``deopt.guard_fail``      event  a speculation guard failed at run time
``deopt.exit``            event  an OSR-exit resumed baseline state mid-flight
``deopt.invalidate``      event  an invalidation cascaded to a dependent version
``deopt.continuation``    span   deopt compensation/continuation code is generated
``analysis.cache_hit``    event  the analysis manager served a cached result
``analysis.cache_miss``   event  an analysis was (re)computed and cached
``analysis.invalidate``   event  a rewrite dropped/migrated cached analyses
``compile.queue``         event  a tier-up compile was enqueued on the background queue
``compile.start``         event  a queue worker picked the job up and began compiling
``compile.install``       event  the finished code was atomically published
``compile.discard``       event  a stale in-flight compile was dropped (generation raced)
``flight.anomaly``        event  the flight recorder tripped an anomaly trigger
``diskcache.hit``         event  a JIT miss was served from the persistent disk cache
``diskcache.miss``        event  the disk cache had no valid entry for the stamp
``diskcache.write``       event  a fresh artifact was written through to disk
``serve.request``         event  the VM server finished one request (ok or error)
========================  =====  ==================================================

*event* entries are Chrome-trace instants (``ph: "i"``); *span* entries
are balanced begin/end pairs (``ph: "B"``/``"E"``).  The bounded
:class:`~repro.obs.flight.FlightRecorder` additionally records finished
spans as single *complete* events (``ph: "X"`` with a ``dur``), so a
ring dump stays well formed even after the begin half of a pair has
been overwritten; ``validate_events`` accepts span names in either
shape.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

ENGINE_INVALIDATE = "engine.invalidate"
TIER_PROMOTE = "tier.promote"
TIER_DEMOTE = "tier.demote"
PROFILE_CALL_HOT = "profile.call_hot"
PROFILE_BACKEDGE_HOT = "profile.backedge_hot"
JIT_COMPILE = "jit.compile"
CODEGEN_BUILD = "codegen.build"
JIT_CACHE_HIT = "jit.cache_hit"
JIT_CACHE_MISS = "jit.cache_miss"
DECODE_BAILOUT = "decode.bailout"
DECODE_FUSE = "decode.fuse"
OSR_INSERT = "osr.insert"
OSR_OPEN_STUB = "osr.open_stub"
OSR_CONTINUATION = "osr.continuation"
OSR_COMPENSATION = "osr.compensation"
OSR_FIRE = "osr.fire"
OSR_STATE_SIZE = "osr.state_size"
SCALARIZE_SPLIT = "scalarize.split"
FEVAL_SPECIALIZE = "feval.specialize"
FEVAL_CACHE_HIT = "feval.cache_hit"
FEVAL_GUARD_FAIL = "feval.guard_fail"
SPEC_SPECIALIZE = "spec.specialize"
SPEC_DISPATCH = "spec.dispatch"
SPEC_RESPECIALIZE = "spec.respecialize"
SPEC_PINNED = "spec.pinned"
DEOPT_GUARD_FAIL = "deopt.guard_fail"
DEOPT_EXIT = "deopt.exit"
DEOPT_INVALIDATE = "deopt.invalidate"
DEOPT_CONTINUATION = "deopt.continuation"
ANALYSIS_CACHE_HIT = "analysis.cache_hit"
ANALYSIS_CACHE_MISS = "analysis.cache_miss"
ANALYSIS_INVALIDATE = "analysis.invalidate"
COMPILE_QUEUE = "compile.queue"
COMPILE_START = "compile.start"
COMPILE_INSTALL = "compile.install"
COMPILE_DISCARD = "compile.discard"
FLIGHT_ANOMALY = "flight.anomaly"
DISKCACHE_HIT = "diskcache.hit"
DISKCACHE_MISS = "diskcache.miss"
DISKCACHE_WRITE = "diskcache.write"
SERVE_REQUEST = "serve.request"

#: metrics-only names (no trace events): the background queue's depth
#: gauge, its enqueue-to-install latency and enqueue-to-start wait
#: timers, the per-call dispatch latency timer, the deopt OSR-exit
#: transition-cost timer, and the VM server's per-request latency
#: timer — each backed by a percentile histogram
COMPILE_QUEUE_DEPTH = "compile.queue_depth"
COMPILE_LATENCY = "compile.latency"
COMPILE_WAIT = "compile.wait"
ENGINE_DISPATCH = "engine.dispatch"
DEOPT_TRANSITION = "deopt.transition"
SERVE_LATENCY = "serve.latency"
#: live-slot-count gauges: the most recent OSR/guard/deopt live-state
#: width and the most recent decoded frame width (slots per frame)
OSR_LIVE_SLOTS = "osr.live_slots"
DECODE_FRAME_SLOTS = "decode.frame_slots"

#: names emitted as instant events
INSTANT_NAMES = frozenset({
    ENGINE_INVALIDATE,
    TIER_PROMOTE,
    TIER_DEMOTE,
    PROFILE_CALL_HOT,
    PROFILE_BACKEDGE_HOT,
    JIT_CACHE_HIT,
    JIT_CACHE_MISS,
    DECODE_BAILOUT,
    DECODE_FUSE,
    OSR_COMPENSATION,
    OSR_FIRE,
    OSR_STATE_SIZE,
    SCALARIZE_SPLIT,
    FEVAL_CACHE_HIT,
    FEVAL_GUARD_FAIL,
    SPEC_DISPATCH,
    SPEC_RESPECIALIZE,
    SPEC_PINNED,
    DEOPT_GUARD_FAIL,
    DEOPT_EXIT,
    DEOPT_INVALIDATE,
    ANALYSIS_CACHE_HIT,
    ANALYSIS_CACHE_MISS,
    ANALYSIS_INVALIDATE,
    COMPILE_QUEUE,
    COMPILE_START,
    COMPILE_INSTALL,
    COMPILE_DISCARD,
    FLIGHT_ANOMALY,
    DISKCACHE_HIT,
    DISKCACHE_MISS,
    DISKCACHE_WRITE,
    SERVE_REQUEST,
})

#: names emitted as begin/end span pairs
SPAN_NAMES = frozenset({
    JIT_COMPILE,
    CODEGEN_BUILD,
    OSR_INSERT,
    OSR_OPEN_STUB,
    OSR_CONTINUATION,
    FEVAL_SPECIALIZE,
    SPEC_SPECIALIZE,
    DEOPT_CONTINUATION,
})

#: the complete, closed vocabulary
EVENT_NAMES = INSTANT_NAMES | SPAN_NAMES

_SCALARS = (str, int, float, bool, type(None))


def validate_events(events: Iterable[Dict[str, object]]) -> List[str]:
    """Structural well-formedness check for a raw tracer event stream.

    Each event is a dict with ``name``, ``ph`` (``"i"``, ``"B"`` or
    ``"E"``), ``ts`` (int nanoseconds) and ``args`` (flat dict of JSON
    scalars).  Returns a list of human-readable problems, empty when the
    stream is well formed:

    * every name belongs to the vocabulary and uses its declared phase;
    * timestamps are monotonically non-decreasing;
    * ``B``/``E`` pairs are balanced and properly nested (stack order);
    * args carry only JSON-serializable scalar values.
    """
    problems: List[str] = []
    stack: List[str] = []
    last_ts = None
    for index, event in enumerate(events):
        where = f"event #{index}"
        name = event.get("name")
        phase = event.get("ph")
        ts = event.get("ts")
        args = event.get("args", {})
        if not isinstance(name, str) or name not in EVENT_NAMES:
            problems.append(f"{where}: unknown event name {name!r}")
            continue
        if phase == "i" and name not in INSTANT_NAMES:
            problems.append(f"{where}: span name {name!r} emitted as instant")
        elif phase in ("B", "E", "X") and name not in SPAN_NAMES:
            problems.append(f"{where}: instant name {name!r} emitted as span")
        elif phase not in ("i", "B", "E", "X"):
            problems.append(f"{where}: unknown phase {phase!r}")
        if phase == "X" and not isinstance(event.get("dur"), int):
            problems.append(
                f"{where}: complete event without integer dur: "
                f"{event.get('dur')!r}"
            )
        if not isinstance(ts, int):
            problems.append(f"{where}: non-integer timestamp {ts!r}")
        else:
            if last_ts is not None and ts < last_ts:
                problems.append(
                    f"{where}: timestamp went backwards ({ts} < {last_ts})"
                )
            last_ts = ts
        if not isinstance(args, dict):
            problems.append(f"{where}: args is not a dict: {args!r}")
        else:
            for key, value in args.items():
                if not isinstance(key, str):
                    problems.append(f"{where}: non-string arg key {key!r}")
                if not isinstance(value, _SCALARS):
                    problems.append(
                        f"{where}: arg {key!r} is not a JSON scalar: "
                        f"{value!r}"
                    )
        if phase == "B":
            stack.append(name)
        elif phase == "E":
            if not stack:
                problems.append(f"{where}: end of {name!r} with no open span")
            elif stack[-1] != name:
                problems.append(
                    f"{where}: end of {name!r} but innermost open span "
                    f"is {stack[-1]!r}"
                )
            else:
                stack.pop()
    for name in stack:
        problems.append(f"span {name!r} was begun but never ended")
    return problems
