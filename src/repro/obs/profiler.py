"""Background sampling profiler: wall-time attribution across tiers.

A daemon thread periodically snapshots every Python thread's frame
stack (``sys._current_frames()``) and attributes each sample to the
innermost *recognizable* frame.  Recognition is free at run time: every
engine thunk already carries its identity in its code object's name
(``_mark_thunk`` stamps ``decoded_<fn>``, ``tiered_<fn>``, ... onto
``co_name``) and JIT-generated code compiles under ``_jit_<fn>`` — so
the profiler needs **zero per-op instrumentation**; the cost of
profiling is paid entirely by the sampling thread.

Per sample the profiler also reads engine-level state that frames
cannot show: the background compile queue's depth and pending set.

Outputs:

* :meth:`report` — wall-time share per tier and per function, plus
  queue statistics;
* :meth:`collapsed` — collapsed-stack lines (``a;b;c count``) that
  ``flamegraph.pl`` / speedscope consume directly;
* :meth:`snapshot` — the JSON document behind both.

The CLI front end is ``python -m repro.obs profile``.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter
from typing import Dict, List, Optional, Tuple

#: code-object name prefix -> tier label (matched longest-first)
TIER_PREFIXES: Tuple[Tuple[str, str], ...] = (
    ("_jit_", "jit"),
    ("decoded_", "decoded"),
    ("interp_", "interp"),
    ("tieredbg_", "tiered-bg-dispatch"),
    ("tiered_", "tiered-dispatch"),
    ("speculative_", "speculative-dispatch"),
    ("osrfire_", "osr-continuation"),
    ("trampoline_", "trampoline"),
)

#: safety bound on stack walks (a runaway recursion still samples fast)
MAX_STACK_DEPTH = 256


def classify_frame(co_name: str) -> Optional[Tuple[str, str]]:
    """``(tier, function)`` for a recognizable code-object name."""
    for prefix, tier in TIER_PREFIXES:
        if co_name.startswith(prefix):
            return tier, co_name[len(prefix):]
    return None


class SamplingProfiler:
    """Samples engine activity on a timer; start/stop or sample manually."""

    def __init__(self, engine=None, interval: float = 0.005):
        if interval <= 0:
            raise ValueError("interval must be positive")
        #: engine whose compile queue is sampled alongside the stacks
        self.engine = engine
        self.interval = interval
        #: (tier, function) -> thread-samples attributed to it
        self.samples: Counter = Counter()
        #: full marker chains (outermost..innermost) -> samples
        self.stacks: Counter = Counter()
        self.attributed = 0   #: thread-samples that hit a marked frame
        self.ticks = 0        #: sampling rounds taken
        self.idle_ticks = 0   #: rounds where no thread ran marked code
        self.queue_depths: List[int] = []
        self.pending: Counter = Counter()
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self.started_at = time.perf_counter()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="obs-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        if self.stopped_at is None:
            self.stopped_at = time.perf_counter()
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    # -- sampling -----------------------------------------------------------------

    def sample_once(self) -> int:
        """Take one sample of every thread; returns the number of
        thread-samples attributed to marked frames."""
        own = threading.get_ident()
        frames = sys._current_frames()
        hits = 0
        for tid, frame in frames.items():
            if tid == own:
                continue
            chain: List[Tuple[str, str]] = []
            depth = 0
            while frame is not None and depth < MAX_STACK_DEPTH:
                marker = classify_frame(frame.f_code.co_name)
                if marker is not None:
                    chain.append(marker)
                frame = frame.f_back
                depth += 1
            if chain:
                chain.reverse()  # outermost first
                self.samples[chain[-1]] += 1
                self.stacks[tuple(chain)] += 1
                hits += 1
        self.ticks += 1
        self.attributed += hits
        if hits == 0:
            self.idle_ticks += 1
        self._sample_engine()
        return hits

    def _sample_engine(self) -> None:
        engine = self.engine
        if engine is None:
            return
        queue = getattr(engine, "background_queue", None)
        if queue is None:
            return
        self.queue_depths.append(queue.depth)
        for name in queue.pending_functions():
            self.pending[name] += 1

    # -- attribution --------------------------------------------------------------

    @property
    def wall_seconds(self) -> float:
        if self.started_at is None:
            return 0.0
        end = self.stopped_at if self.stopped_at is not None else time.perf_counter()
        return end - self.started_at

    def tier_shares(self) -> Dict[str, float]:
        """Fraction of attributed samples per tier (sums to 1.0)."""
        totals: Counter = Counter()
        for (tier, _), count in self.samples.items():
            totals[tier] += count
        total = sum(totals.values())
        if not total:
            return {}
        return {tier: count / total for tier, count in totals.items()}

    def tier_seconds(self) -> Dict[str, float]:
        """Estimated wall seconds per tier: share of sampling rounds in
        that tier times the profiled wall time."""
        if not self.ticks:
            return {}
        wall = self.wall_seconds
        totals: Counter = Counter()
        for (tier, _), count in self.samples.items():
            totals[tier] += count
        return {tier: wall * count / self.ticks
                for tier, count in totals.items()}

    def collapsed(self) -> List[str]:
        """Collapsed-stack lines for flamegraph tooling, heaviest first."""
        lines = []
        for chain, count in self.stacks.most_common():
            frames = ";".join(f"{func} [{tier}]" for tier, func in chain)
            lines.append(f"{frames} {count}")
        return lines

    def snapshot(self) -> Dict[str, object]:
        depths = self.queue_depths
        return {
            "interval_s": self.interval,
            "wall_s": self.wall_seconds,
            "ticks": self.ticks,
            "attributed": self.attributed,
            "idle_ticks": self.idle_ticks,
            "tiers": {tier: share
                      for tier, share in sorted(self.tier_shares().items())},
            "functions": {
                f"{func} [{tier}]": count
                for (tier, func), count in self.samples.most_common()
            },
            "queue": {
                "samples": len(depths),
                "max_depth": max(depths) if depths else 0,
                "mean_depth": (sum(depths) / len(depths)) if depths else 0.0,
                "pending": dict(self.pending.most_common()),
            },
            "collapsed": self.collapsed(),
        }

    def report(self, title: str = "sampling profile") -> str:
        snap = self.snapshot()
        lines = [
            title,
            f"wall {snap['wall_s']:.3f}s, {snap['ticks']} samples at "
            f"{self.interval * 1e3:.1f}ms "
            f"({snap['idle_ticks']} idle)",
            f"{'tier':<22} {'share':>8}",
        ]
        for tier, share in sorted(self.tier_shares().items(),
                                  key=lambda kv: -kv[1]):
            lines.append(f"{tier:<22} {share * 100:>7.1f}%")
        if not self.tier_shares():
            lines.append("(no attributed samples)")
        lines.append(f"{'function':<40} {'samples':>8}")
        for (tier, func), count in self.samples.most_common(12):
            lines.append(f"{func + ' [' + tier + ']':<40} {count:>8}")
        queue = snap["queue"]
        if queue["samples"]:
            lines.append(
                f"compile queue: max depth {queue['max_depth']}, mean "
                f"{queue['mean_depth']:.2f} over {queue['samples']} samples"
            )
            if queue["pending"]:
                hot = ", ".join(f"{name}({n})"
                                for name, n in list(queue["pending"].items())[:6])
                lines.append(f"pending most often: {hot}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<SamplingProfiler ticks={self.ticks} "
                f"attributed={self.attributed}>")
