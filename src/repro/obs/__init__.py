"""``repro.obs`` — zero-dependency VM observability.

Six layers:

* :class:`Tracer` — cheap structured event tracing (spans + instants);
* :class:`MetricsRegistry` — named counters/gauges/timers (timers are
  histogram-backed: every ``record_time`` also lands in a
  :class:`LogHistogram`, so ``timer_stats`` reports p50/p90/p99/p999);
* :class:`FlightRecorder` — a bounded ring buffer cheap enough to leave
  on in production; dumps a Chrome trace of the last N events on demand
  or when an anomaly trips (deopt-thrash pin, invalidation storm,
  uncaught trap);
* :class:`SamplingProfiler` — a background thread attributing wall time
  across tiers with zero per-op instrumentation;
* journeys — per-function tier-journey reports answering "why is this
  function still at baseline?";
* exporters — Chrome trace-event JSON (Perfetto-loadable), a table
  report, and a machine-readable stats JSON.

The :class:`Telemetry` facade bundles a tracer and a registry behind a
single ``enabled`` flag; :data:`NULL_TELEMETRY` is the disabled no-op
every hook site holds by default, so tracing that is off costs one
attribute check.  Scripts enable tracing with::

    from repro.obs import trace
    with trace(chrome="trace.json", report=True):
        engine = ExecutionEngine(module)
        engine.run("main")

while production runs attach :func:`production_telemetry` (a Telemetry
over a FlightRecorder) or pass ``flight=True`` to the engine.  Inspect
traces with ``python -m repro.obs report|flight|profile|journey``.
See ``docs/observability.md`` for the event vocabulary.
"""

from . import events
from .events import EVENT_NAMES, INSTANT_NAMES, SPAN_NAMES, validate_events
from .export import (
    chrome_events_from_raw,
    chrome_trace_document,
    chrome_trace_events,
    format_report,
    format_trace_report,
    load_chrome_trace,
    stats_document,
    summarize_chrome_events,
    validate_chrome_trace,
    write_chrome_trace,
    write_stats_json,
)
from .flight import FlightRecorder
from .histogram import LogHistogram
from .journey import Journey, build_journeys, format_journeys
from .metrics import MetricsRegistry
from .profiler import SamplingProfiler, classify_frame
from .telemetry import (
    NULL_TELEMETRY,
    Telemetry,
    ambient,
    local_telemetry,
    production_telemetry,
    set_ambient,
    trace,
)
from .tracer import Tracer

__all__ = [
    "EVENT_NAMES",
    "INSTANT_NAMES",
    "SPAN_NAMES",
    "FlightRecorder",
    "Journey",
    "LogHistogram",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "SamplingProfiler",
    "Telemetry",
    "Tracer",
    "ambient",
    "build_journeys",
    "chrome_events_from_raw",
    "chrome_trace_document",
    "chrome_trace_events",
    "classify_frame",
    "events",
    "format_journeys",
    "format_report",
    "format_trace_report",
    "load_chrome_trace",
    "local_telemetry",
    "production_telemetry",
    "set_ambient",
    "stats_document",
    "summarize_chrome_events",
    "trace",
    "validate_chrome_trace",
    "validate_events",
    "write_chrome_trace",
    "write_stats_json",
]
