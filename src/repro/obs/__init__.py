"""``repro.obs`` — zero-dependency VM observability.

Three layers:

* :class:`Tracer` — cheap structured event tracing (spans + instants);
* :class:`MetricsRegistry` — named counters/gauges/timers with
  snapshot and diff support;
* exporters — Chrome trace-event JSON (Perfetto-loadable), a table
  report, and a machine-readable stats JSON.

The :class:`Telemetry` facade bundles a tracer and a registry behind a
single ``enabled`` flag; :data:`NULL_TELEMETRY` is the disabled no-op
every hook site holds by default, so tracing that is off costs one
attribute check.  Scripts enable tracing with::

    from repro.obs import trace
    with trace(chrome="trace.json", report=True):
        engine = ExecutionEngine(module)
        engine.run("main")

and inspect traces with ``python -m repro.obs report trace.json``.
See ``docs/observability.md`` for the event vocabulary.
"""

from . import events
from .events import EVENT_NAMES, INSTANT_NAMES, SPAN_NAMES, validate_events
from .export import (
    chrome_trace_document,
    chrome_trace_events,
    format_report,
    format_trace_report,
    load_chrome_trace,
    stats_document,
    summarize_chrome_events,
    validate_chrome_trace,
    write_chrome_trace,
    write_stats_json,
)
from .metrics import MetricsRegistry
from .telemetry import (
    NULL_TELEMETRY,
    Telemetry,
    ambient,
    local_telemetry,
    set_ambient,
    trace,
)
from .tracer import Tracer

__all__ = [
    "EVENT_NAMES",
    "INSTANT_NAMES",
    "SPAN_NAMES",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "Telemetry",
    "Tracer",
    "ambient",
    "chrome_trace_document",
    "chrome_trace_events",
    "events",
    "format_report",
    "format_trace_report",
    "load_chrome_trace",
    "local_telemetry",
    "set_ambient",
    "stats_document",
    "summarize_chrome_events",
    "trace",
    "validate_chrome_trace",
    "validate_events",
    "write_chrome_trace",
    "write_stats_json",
]
