"""Command-line trace tooling.

::

    python -m repro.obs report trace.json     # event counts + span timings
    python -m repro.obs validate trace.json   # schema check (exit 1 on fail)
    python -m repro.obs smoke --out trace.json  # traced shootout run
    python -m repro.obs flight                # shootout on the flight ring
    python -m repro.obs profile               # sampled shootout run
    python -m repro.obs journey               # per-function tier journeys

``report``, ``validate`` and ``journey`` accept any Chrome trace-event
document (the files :func:`repro.obs.write_chrome_trace` and
``make trace-smoke`` produce, or a bare event array); ``journey``
without a trace argument runs the smoke scenario itself.
"""

from __future__ import annotations

import argparse
import sys

from .export import format_trace_report, load_chrome_trace, validate_chrome_trace


def _run_flight(args) -> int:
    from .export import chrome_events_from_raw
    from .smoke import run_trace_smoke
    from .telemetry import production_telemetry

    telemetry = production_telemetry(capacity=args.capacity)
    result = run_trace_smoke(benchmark_name=args.benchmark,
                             telemetry=telemetry, tier=args.tier)
    flight = telemetry.flight
    stats = flight.stats()
    print(format_trace_report(chrome_events_from_raw(flight.events),
                              title="flight-recorder report"))
    print(f"ring: {stats['buffered']}/{stats['capacity']} buffered, "
          f"{stats['recorded']} recorded, {stats['dropped']} dropped")
    if stats["anomalies"]:
        print(f"anomalies: {', '.join(stats['anomalies'])}")
    if args.out:
        flight.dump(args.out)
        print(f"wrote {args.out}")
    print(f"checksum: {result.checksum}")
    return 0


def _run_profile(args) -> int:
    from .profiler import SamplingProfiler
    from .smoke import run_trace_smoke
    from .telemetry import Telemetry

    profiler = SamplingProfiler(interval=args.interval)
    with profiler:
        result = run_trace_smoke(benchmark_name=args.benchmark,
                                 telemetry=Telemetry(), tier=args.tier)
    print(profiler.report(title=f"sampling profile: {args.benchmark} "
                                f"[{args.tier}]"))
    if args.collapsed:
        with open(args.collapsed, "w") as fh:
            fh.write("\n".join(profiler.collapsed()) + "\n")
        print(f"wrote {args.collapsed}")
    print(f"checksum: {result.checksum}")
    return 0


def _run_journey(args) -> int:
    from .journey import build_journeys, format_journeys

    if args.trace is not None:
        events = load_chrome_trace(args.trace)
        title = f"tier journeys: {args.trace}"
    else:
        from .smoke import run_trace_smoke

        result = run_trace_smoke(benchmark_name=args.benchmark)
        events = result.telemetry.tracer.events
        title = f"tier journeys: traced {args.benchmark} run"
    journeys = build_journeys(events)
    print(title)
    print(format_journeys(journeys, function=args.function,
                          max_steps=args.max_steps))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect and validate repro VM traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser("report", help="print the table report")
    p_report.add_argument("trace", help="Chrome trace-event JSON file")

    p_validate = sub.add_parser("validate",
                                help="check a trace against the schema")
    p_validate.add_argument("trace", help="Chrome trace-event JSON file")

    p_smoke = sub.add_parser(
        "smoke",
        help="run a traced shootout program and validate the trace",
    )
    p_smoke.add_argument("--benchmark", default="n-body")
    p_smoke.add_argument("--out", default=None, metavar="PATH",
                         help="also write the Chrome trace to PATH")

    p_flight = sub.add_parser(
        "flight",
        help="run a shootout program on the always-on flight recorder",
    )
    p_flight.add_argument("--benchmark", default="n-body")
    p_flight.add_argument("--tier", default="tiered")
    p_flight.add_argument("--capacity", type=int, default=None,
                          help="ring capacity (default 4096)")
    p_flight.add_argument("--out", default=None, metavar="PATH",
                          help="dump the ring as a Chrome trace to PATH")

    p_profile = sub.add_parser(
        "profile",
        help="run a shootout program under the sampling profiler",
    )
    p_profile.add_argument("--benchmark", default="n-body")
    p_profile.add_argument("--tier", default="tiered")
    p_profile.add_argument("--interval", type=float, default=0.002,
                           metavar="S", help="sampling interval in seconds")
    p_profile.add_argument("--collapsed", default=None, metavar="PATH",
                           help="write collapsed stacks for flamegraph.pl")

    p_journey = sub.add_parser(
        "journey",
        help="per-function tier-journey report from a trace (or a fresh run)",
    )
    p_journey.add_argument("trace", nargs="?", default=None,
                           help="Chrome trace-event JSON file (omit to run "
                                "the smoke scenario)")
    p_journey.add_argument("--benchmark", default="n-body")
    p_journey.add_argument("--function", default=None,
                           help="show only this function's journey")
    p_journey.add_argument("--max-steps", type=int, default=20)
    args = parser.parse_args(argv)

    if args.command == "report":
        events = load_chrome_trace(args.trace)
        print(format_trace_report(events, title=f"trace report: {args.trace}"))
        return 0

    if args.command == "validate":
        events = load_chrome_trace(args.trace)
        problems = validate_chrome_trace(events)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}", file=sys.stderr)
            return 1
        print(f"{args.trace}: {len(events)} events, schema ok")
        return 0

    if args.command == "flight":
        if args.capacity is None:
            from .flight import DEFAULT_CAPACITY

            args.capacity = DEFAULT_CAPACITY
        return _run_flight(args)

    if args.command == "profile":
        return _run_profile(args)

    if args.command == "journey":
        return _run_journey(args)

    # smoke
    from .export import chrome_trace_events
    from .smoke import run_trace_smoke

    result = run_trace_smoke(benchmark_name=args.benchmark, out=args.out)
    events = chrome_trace_events(result.telemetry)
    print(format_trace_report(events, title="trace-smoke report"))
    if args.out:
        print(f"wrote {args.out}")
    for problem in result.problems:
        print(f"INVALID: {problem}", file=sys.stderr)
    for name in result.missing:
        print(f"MISSING: required event {name!r} absent", file=sys.stderr)
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
