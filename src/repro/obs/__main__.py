"""Command-line trace tooling.

::

    python -m repro.obs report trace.json     # event counts + span timings
    python -m repro.obs validate trace.json   # schema check (exit 1 on fail)
    python -m repro.obs smoke --out trace.json  # traced shootout run

``report`` and ``validate`` accept any Chrome trace-event document (the
files :func:`repro.obs.write_chrome_trace` and ``make trace-smoke``
produce, or a bare event array).
"""

from __future__ import annotations

import argparse
import sys

from .export import format_trace_report, load_chrome_trace, validate_chrome_trace


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect and validate repro VM traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser("report", help="print the table report")
    p_report.add_argument("trace", help="Chrome trace-event JSON file")

    p_validate = sub.add_parser("validate",
                                help="check a trace against the schema")
    p_validate.add_argument("trace", help="Chrome trace-event JSON file")

    p_smoke = sub.add_parser(
        "smoke",
        help="run a traced shootout program and validate the trace",
    )
    p_smoke.add_argument("--benchmark", default="n-body")
    p_smoke.add_argument("--out", default=None, metavar="PATH",
                         help="also write the Chrome trace to PATH")
    args = parser.parse_args(argv)

    if args.command == "report":
        events = load_chrome_trace(args.trace)
        print(format_trace_report(events, title=f"trace report: {args.trace}"))
        return 0

    if args.command == "validate":
        events = load_chrome_trace(args.trace)
        problems = validate_chrome_trace(events)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}", file=sys.stderr)
            return 1
        print(f"{args.trace}: {len(events)} events, schema ok")
        return 0

    # smoke
    from .export import chrome_trace_events
    from .smoke import run_trace_smoke

    result = run_trace_smoke(benchmark_name=args.benchmark, out=args.out)
    events = chrome_trace_events(result.telemetry)
    print(format_trace_report(events, title="trace-smoke report"))
    if args.out:
        print(f"wrote {args.out}")
    for problem in result.problems:
        print(f"INVALID: {problem}", file=sys.stderr)
    for name in result.missing:
        print(f"MISSING: required event {name!r} absent", file=sys.stderr)
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
