"""Log-bucketed latency histograms with percentile snapshots.

:class:`LogHistogram` is the HDR-histogram idea reduced to what the VM
needs: observations (seconds) are folded into logarithmically spaced
buckets — every power-of-two octave is split into ``2**sub_bits``
linear sub-buckets — so memory stays bounded (a sparse dict of bucket
counts) and relative error is bounded by ``2**-sub_bits`` (~3% at the
default 5 bits) regardless of the dynamic range.  That is what makes it
safe to leave on for millions of calls: recording is an integer
bit-twiddle plus a dict increment, and a snapshot walks at most a few
hundred occupied buckets.

Recording, merging and reading are each lock-safe; two histograms can
be merged without deadlock (the source is snapshotted under its own
lock first, then folded under the destination's).

:class:`~repro.obs.metrics.MetricsRegistry` attaches one histogram to
every timer, so any ``record_time`` name — per-call dispatch latency,
``jit.compile`` time, compile-queue wait, deopt-transition cost — gains
``p50/p90/p99/p999`` in ``timer_stats`` and ``snapshot()`` for free.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Optional, Tuple

#: the percentiles every snapshot reports, as (key, percentile) pairs
SNAPSHOT_PERCENTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 50.0), ("p90", 90.0), ("p99", 99.0), ("p999", 99.9),
)


class LogHistogram:
    """Sparse log-bucketed histogram of durations (stored as integer
    nanoseconds, reported as float seconds)."""

    __slots__ = ("_sub_bits", "_counts", "_count", "_total_ns",
                 "_min_ns", "_max_ns", "_lock")

    def __init__(self, sub_bits: int = 5):
        if not 1 <= sub_bits <= 12:
            raise ValueError("sub_bits must be in [1, 12]")
        self._sub_bits = sub_bits
        #: bucket index -> observation count (sparse)
        self._counts: Dict[int, int] = {}
        self._count = 0
        self._total_ns = 0
        self._min_ns: Optional[int] = None
        self._max_ns: Optional[int] = None
        self._lock = threading.Lock()

    # -- bucket math (pure functions of the index) --------------------------------

    def _bucket_index(self, ns: int) -> int:
        bits = self._sub_bits
        if ns < (1 << bits):
            return ns  # small values are exact (one bucket per ns)
        shift = ns.bit_length() - 1 - bits
        return ((shift + 1) << bits) + ((ns >> shift) - (1 << bits))

    def _bucket_mid_ns(self, index: int) -> float:
        bits = self._sub_bits
        base = 1 << bits
        if index < base:
            return float(index)
        octave = index >> bits
        shift = octave - 1
        offset = index - (octave << bits)
        lo = (base + offset) << shift
        return lo + (1 << shift) / 2.0

    # -- recording ----------------------------------------------------------------

    def record(self, seconds: float) -> None:
        """Fold one observation (non-negative seconds) in."""
        self.record_ns(int(seconds * 1e9))

    def record_ns(self, ns: int) -> None:
        if ns < 0:
            ns = 0
        index = self._bucket_index(ns)
        with self._lock:
            self._counts[index] = self._counts.get(index, 0) + 1
            self._count += 1
            self._total_ns += ns
            if self._min_ns is None or ns < self._min_ns:
                self._min_ns = ns
            if self._max_ns is None or ns > self._max_ns:
                self._max_ns = ns

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold ``other``'s observations into this histogram.

        Deadlock-safe: ``other`` is copied under its own lock first,
        then folded under ours — so two threads merging in opposite
        directions never hold both locks at once.
        """
        if other._sub_bits != self._sub_bits:
            raise ValueError("cannot merge histograms with different "
                             "sub-bucket resolution")
        with other._lock:
            items = list(other._counts.items())
            count = other._count
            total = other._total_ns
            lo, hi = other._min_ns, other._max_ns
        with self._lock:
            for index, n in items:
                self._counts[index] = self._counts.get(index, 0) + n
            self._count += count
            self._total_ns += total
            if lo is not None and (self._min_ns is None or lo < self._min_ns):
                self._min_ns = lo
            if hi is not None and (self._max_ns is None or hi > self._max_ns):
                self._max_ns = hi
        return self

    # -- reading ------------------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total_ns / 1e9

    @property
    def min(self) -> Optional[float]:
        return None if self._min_ns is None else self._min_ns / 1e9

    @property
    def max(self) -> Optional[float]:
        return None if self._max_ns is None else self._max_ns / 1e9

    def percentile(self, p: float) -> Optional[float]:
        """The value (seconds) at percentile ``p`` in [0, 100], or None
        when the histogram is empty.  Estimates use bucket midpoints,
        clamped to the observed min/max so tails never over-report."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            return self._percentile_locked(p)

    def _percentile_locked(self, p: float) -> Optional[float]:
        if self._count == 0:
            return None
        # rank of the observation at percentile p (1-based, ceil)
        rank = max(1, -(-int(self._count * p * 10) // 1000))
        cumulative = 0
        for index in sorted(self._counts):
            cumulative += self._counts[index]
            if cumulative >= rank:
                mid = self._bucket_mid_ns(index)
                mid = min(max(mid, self._min_ns), self._max_ns)
                return mid / 1e9
        return self._max_ns / 1e9  # pragma: no cover — rank <= count

    def percentiles(self, ps: Iterable[float]) -> Dict[float, Optional[float]]:
        with self._lock:
            return {p: self._percentile_locked(p) for p in ps}

    def snapshot(self) -> Dict[str, object]:
        """A consistent, JSON-serializable summary (seconds)."""
        with self._lock:
            out: Dict[str, object] = {
                "count": self._count,
                "total": self._total_ns / 1e9,
                "min": None if self._min_ns is None else self._min_ns / 1e9,
                "max": None if self._max_ns is None else self._max_ns / 1e9,
                "mean": (self._total_ns / self._count / 1e9
                         if self._count else 0.0),
            }
            for key, p in SNAPSHOT_PERCENTILES:
                out[key] = self._percentile_locked(p)
        return out

    def clear(self) -> None:
        with self._lock:
            self._counts.clear()
            self._count = 0
            self._total_ns = 0
            self._min_ns = None
            self._max_ns = None

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<LogHistogram n={self._count} "
                f"buckets={len(self._counts)}>")
