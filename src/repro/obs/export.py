"""Exporters: Chrome trace-event JSON, table report, stats JSON.

Three consumers of one event stream:

* :func:`write_chrome_trace` — the `Trace Event Format`_ document that
  ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_ load
  directly (open the UI, drag the file in);
* :func:`format_report` — a human-readable table of event counts and
  span timings for terminals and logs;
* :func:`write_stats_json` — the machine-readable metrics snapshot that
  benchmark JSON documents embed.

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

#: synthetic process/thread ids — the VM is single-process, single-thread
TRACE_PID = 1
TRACE_TID = 1


def chrome_events_from_raw(events: List[Dict[str, object]]
                           ) -> List[Dict[str, object]]:
    """Raw tracer/flight-recorder events in Chrome trace-event form
    (timestamps and durations in µs).  Handles instants (``i``),
    span pairs (``B``/``E``) and the flight recorder's complete
    events (``X`` with an ns ``dur``)."""
    out: List[Dict[str, object]] = []
    for event in events:
        chrome: Dict[str, object] = {
            "name": event["name"],
            "cat": str(event["name"]).split(".", 1)[0],
            "ph": event["ph"],
            "ts": event["ts"] / 1000.0,
            "pid": TRACE_PID,
            "tid": TRACE_TID,
        }
        if event.get("args"):
            chrome["args"] = dict(event["args"])
        if event["ph"] == "i":
            chrome["s"] = "t"  # thread-scoped instant
        elif event["ph"] == "X":
            chrome["dur"] = event.get("dur", 0) / 1000.0
        out.append(chrome)
    return out


def chrome_trace_events(telemetry) -> List[Dict[str, object]]:
    """The tracer's events in Chrome trace-event form (timestamps in µs)."""
    return chrome_events_from_raw(telemetry.tracer.events)


def chrome_trace_document(telemetry) -> Dict[str, object]:
    return {
        "traceEvents": chrome_trace_events(telemetry),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }


def write_chrome_trace(telemetry, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace_document(telemetry), fh, indent=1)


def load_chrome_trace(path: str) -> List[Dict[str, object]]:
    """Events from a Chrome trace document (or bare event array)."""
    with open(path) as fh:
        doc = json.load(fh)
    if isinstance(doc, list):
        return doc
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError(f"{path}: not a Chrome trace-event document")
    return events


def validate_chrome_trace(events: List[Dict[str, object]]) -> List[str]:
    """Structural checks against the trace-event schema; returns problems."""
    problems: List[str] = []
    open_spans: List[str] = []
    last_ts: Optional[float] = None
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing required key {key!r}")
        phase = event.get("ph")
        if phase not in ("i", "I", "B", "E", "X", "M", "C"):
            problems.append(f"{where}: unsupported phase {phase!r}")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"{where}: non-numeric ts {ts!r}")
        elif phase in ("i", "I", "B", "E", "X"):
            if last_ts is not None and ts < last_ts:
                problems.append(
                    f"{where}: timestamp went backwards ({ts} < {last_ts})"
                )
            last_ts = ts
        if phase == "B":
            open_spans.append(str(event.get("name")))
        elif phase == "E":
            if not open_spans:
                problems.append(f"{where}: 'E' with no open span")
            else:
                open_spans.pop()
    for name in open_spans:
        problems.append(f"span {name!r} was begun but never ended")
    return problems


def summarize_chrome_events(events: List[Dict[str, object]]
                            ) -> Dict[str, Dict[str, float]]:
    """Per-name counts and span durations from Chrome-format events."""
    summary: Dict[str, Dict[str, float]] = {}
    stack: List[Dict[str, object]] = []
    for event in events:
        name = str(event.get("name"))
        phase = event.get("ph")
        if phase in ("i", "I"):
            cell = summary.setdefault(name, {"count": 0})
            cell["count"] += 1
        elif phase == "B":
            cell = summary.setdefault(name, {"count": 0})
            cell["count"] += 1
            stack.append(event)
        elif phase == "E" and stack:
            begin = stack.pop()
            cell = summary.setdefault(str(begin.get("name")), {"count": 0})
            duration = float(event.get("ts", 0)) - float(begin.get("ts", 0))
            cell["total_us"] = cell.get("total_us", 0.0) + duration
        elif phase == "X":
            cell = summary.setdefault(name, {"count": 0})
            cell["count"] += 1
            cell["total_us"] = cell.get("total_us", 0.0) + float(
                event.get("dur", 0)
            )
    return summary


def format_trace_report(events: List[Dict[str, object]],
                        title: str = "trace report") -> str:
    """Render a Chrome event list as the human-readable table."""
    summary = summarize_chrome_events(events)
    lines = [
        title,
        f"{'event':<22} {'count':>8} {'total':>12} {'mean':>12}",
    ]
    for name in sorted(summary):
        cell = summary[name]
        count = int(cell.get("count", 0))
        if "total_us" in cell and count:
            total = cell["total_us"]
            lines.append(
                f"{name:<22} {count:>8} {total:>9.1f} us "
                f"{total / count:>9.1f} us"
            )
        else:
            lines.append(f"{name:<22} {count:>8} {'-':>12} {'-':>12}")
    if len(lines) == 2:
        lines.append("(no events)")
    return "\n".join(lines)


def format_report(telemetry, title: str = "telemetry report") -> str:
    """The table report straight from a live telemetry object."""
    return format_trace_report(chrome_trace_events(telemetry), title=title)


def stats_document(telemetry) -> Dict[str, object]:
    """The machine-readable stats JSON: metrics snapshot + event total."""
    return {
        "format": "repro.obs.stats/1",
        "event_count": len(telemetry.tracer.events),
        "metrics": telemetry.metrics.snapshot(),
    }


def write_stats_json(telemetry, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(stats_document(telemetry), fh, indent=2, default=str)
