"""Trace smoke run: a shootout program with tracing on and a firing OSR.

Backs ``make trace-smoke`` and the pytest smoke test: compile one
shootout benchmark, run it in the default tiered mode with telemetry
attached and an always-firing resolved OSR point in its per-iteration
method, export the Chrome trace, and validate it against the
trace-event schema.  A healthy VM produces at least ``tier.promote``,
``jit.compile`` and ``osr.fire`` events in one run.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .export import chrome_trace_events, validate_chrome_trace, write_chrome_trace
from .telemetry import Telemetry

#: events a tiered shootout run with a firing OSR point must produce
REQUIRED_EVENTS = ("tier.promote", "jit.compile", "osr.fire")


class SmokeResult:
    def __init__(self, telemetry: Telemetry, checksum, problems: List[str],
                 missing: List[str]):
        self.telemetry = telemetry
        self.checksum = checksum
        self.problems = problems  #: schema violations (empty when valid)
        self.missing = missing    #: required events absent from the trace

    @property
    def ok(self) -> bool:
        return not self.problems and not self.missing


def run_trace_smoke(benchmark_name: str = "n-body",
                    level: str = "unoptimized",
                    call_threshold: int = 4,
                    out: Optional[str] = None,
                    telemetry: Optional[Telemetry] = None,
                    tier: str = "tiered") -> SmokeResult:
    """Run the smoke scenario; optionally write the trace to ``out``.

    Pass ``telemetry`` to drive the run through a caller-owned sink —
    the flight-recorder CLI runs the same scenario over a
    :func:`~repro.obs.telemetry.production_telemetry` ring.
    """
    from ..core import HotCounterCondition, insert_resolved_osr_point
    from ..experiments.sites import q2_location
    from ..shootout import SUITE, compile_benchmark
    from ..vm import ExecutionEngine

    benchmark = SUITE[benchmark_name]
    module = compile_benchmark(benchmark, level)
    if telemetry is None:
        telemetry = Telemetry()
    engine = ExecutionEngine(module, tier=tier,
                             call_threshold=call_threshold,
                             telemetry=telemetry)
    # always-firing resolved OSR in the per-iteration method: every call
    # transfers to the continuation, so the trace records real fires
    location = q2_location(module, benchmark)
    insert_resolved_osr_point(
        location.function, location, HotCounterCondition(1), engine=engine,
    )
    checksum = engine.run(benchmark.entry, *benchmark.args)

    events = chrome_trace_events(telemetry)
    problems = validate_chrome_trace(events)
    seen = {str(event["name"]) for event in events}
    missing = [name for name in REQUIRED_EVENTS if name not in seen]
    if out is not None:
        write_chrome_trace(telemetry, out)
    return SmokeResult(telemetry, checksum, problems, missing)
