"""The telemetry facade: a tracer + metrics registry behind one switch.

Hook sites across the VM hold a telemetry object and guard every
emission with its ``enabled`` attribute, so disabled tracing costs one
attribute check per site::

    tel = engine.telemetry
    if tel.enabled:
        tel.event(events.TIER_PROMOTE, function=func.name)

:data:`NULL_TELEMETRY` is the module-level no-op used when nothing is
attached; its ``span()`` returns a shared no-op context manager so cold
paths may use ``with tel.span(...)`` unconditionally.

The *ambient* telemetry is what engines pick up when constructed without
an explicit ``telemetry=`` argument; :func:`trace` installs one for a
``with`` block and exports the results on exit — the one-liner scripts
use::

    from repro.obs import trace
    with trace(chrome="trace.json", report=True) as tel:
        engine = ExecutionEngine(module)
        engine.run("main")
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, List, Optional

from .flight import DEFAULT_CAPACITY, FlightRecorder
from .metrics import MetricsRegistry
from .tracer import Tracer


class _TelemetrySpan:
    """Closes the tracer span and folds its duration into the timer."""

    __slots__ = ("_telemetry", "_name")

    def __init__(self, telemetry: "Telemetry", name: str):
        self._telemetry = telemetry
        self._name = name

    def __enter__(self) -> "_TelemetrySpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        seconds = self._telemetry.tracer.end(self._name)
        self._telemetry.metrics.record_time(self._name, seconds)


class Telemetry:
    """A live tracer/metrics pair; the ``enabled`` flag is always True —
    disabling means holding :data:`NULL_TELEMETRY` instead."""

    __slots__ = ("tracer", "metrics")

    enabled = True

    def __init__(self, clock: Optional[Callable[[], int]] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer=None):
        #: the event sink: an unbounded Tracer by default, or any object
        #: with the same interface — :func:`production_telemetry` passes
        #: a bounded :class:`~repro.obs.flight.FlightRecorder`
        self.tracer = tracer if tracer is not None else Tracer(clock=clock)
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    @property
    def flight(self) -> Optional[FlightRecorder]:
        """The flight recorder behind this telemetry, or None when the
        sink is a full tracer — hook sites use this to report anomalies
        (``engine.call`` on an uncaught Trap)."""
        tracer = self.tracer
        return tracer if isinstance(tracer, FlightRecorder) else None

    def event(self, name: str, **args) -> None:
        """Record an instant event and bump its counter."""
        self.metrics.inc(name)
        self.tracer.instant(name, args)

    def span(self, name: str, **args) -> _TelemetrySpan:
        """Open a span (``with`` block): B/E trace pair + timer entry."""
        self.metrics.inc(name)
        self.tracer.begin(name, args)
        return _TelemetrySpan(self, name)

    @property
    def events(self) -> List[Dict[str, object]]:
        return self.tracer.events

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Telemetry {len(self.tracer.events)} events>"


class _NullSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None


_NULL_SPAN = _NullSpan()


class _NullTelemetry:
    """The disabled fast path: every emission is a no-op."""

    __slots__ = ()

    enabled = False
    flight = None

    def event(self, name: str, **args) -> None:
        pass

    def span(self, name: str, **args) -> _NullSpan:
        return _NULL_SPAN

    def __repr__(self) -> str:  # pragma: no cover
        return "<NullTelemetry>"


#: the shared disabled telemetry — ``enabled`` is False, all emissions no-op
NULL_TELEMETRY = _NullTelemetry()

_ambient = NULL_TELEMETRY


def ambient():
    """The telemetry newly constructed engines attach to by default."""
    return _ambient


def set_ambient(telemetry) -> None:
    """Install ``telemetry`` (or :data:`NULL_TELEMETRY`) as the ambient
    default; prefer the :func:`trace` context manager in scripts."""
    global _ambient
    _ambient = telemetry if telemetry is not None else NULL_TELEMETRY


def production_telemetry(capacity: int = DEFAULT_CAPACITY,
                         dump_path: Optional[str] = None,
                         metrics: Optional[MetricsRegistry] = None,
                         **recorder_options) -> Telemetry:
    """An always-on telemetry cheap enough for production engines.

    The event sink is a bounded :class:`~repro.obs.flight.FlightRecorder`
    (drop-oldest ring with anomaly triggers and on-demand Chrome dump)
    instead of the unbounded tracer, and the metrics registry's timers
    carry percentile histograms — so a ``tiered``/``tiered-bg`` engine
    can keep this attached across millions of calls and still answer
    "what were the p99 dispatch and compile latencies, and what happened
    right before that anomaly?".  ``ExecutionEngine(module, flight=True)``
    attaches one automatically.
    """
    recorder = FlightRecorder(capacity=capacity, dump_path=dump_path,
                              **recorder_options)
    return Telemetry(metrics=metrics, tracer=recorder)


def local_telemetry() -> Telemetry:
    """A fresh always-on telemetry for one experiment/configuration.

    Its trace is private (callers read span timings and fire counts off
    it deterministically, whether or not a :func:`trace` is active), but
    its metrics fold into the ambient registry when one is installed —
    so a benchmark runner's per-target snapshot diff still sees what the
    experiment engines did.
    """
    amb = _ambient
    return Telemetry(metrics=amb.metrics if amb.enabled else None)


@contextmanager
def trace(chrome: Optional[str] = None, stats: Optional[str] = None,
          report: bool = False,
          clock: Optional[Callable[[], int]] = None):
    """Enable tracing for a ``with`` block and export on exit.

    ``chrome`` / ``stats`` are output paths for the Chrome trace-event
    JSON and the machine-readable stats JSON; ``report=True`` prints the
    human-readable table on exit.  Yields the live :class:`Telemetry` so
    the block can also inspect metrics directly.
    """
    from .export import format_report, write_chrome_trace, write_stats_json

    telemetry = Telemetry(clock=clock)
    previous = _ambient
    set_ambient(telemetry)
    try:
        yield telemetry
    finally:
        set_ambient(previous)
        if chrome is not None:
            write_chrome_trace(telemetry, chrome)
        if stats is not None:
            write_stats_json(telemetry, stats)
        if report:
            print(format_report(telemetry))
