"""Named counters, gauges and timers with snapshot + diff support.

One :class:`MetricsRegistry` is the single stats surface for a VM: the
execution engine folds its former ad-hoc ``tier_stats()`` counters into
it, telemetry events bump a counter per event name, and spans accumulate
into timers — so a benchmark run can snapshot before/after and report
exactly what the runtime did in between.

Counters are plain dict increments (cheap enough to stay on even without
tracing); timers store ``(count, total, min, max)`` in seconds.

The registry is thread-safe: one lock guards every mutation, so the
background compile workers and the main thread fold into the same
counters/timers without losing increments.  Reads (``counter``,
``gauge_value``, ``timer_stats``) stay lock-free — a read racing a
write sees either the old or the new value, never a torn one.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Optional


class MetricsRegistry:
    """Process-local registry of named counters, gauges and timers."""

    __slots__ = ("_counters", "_gauges", "_timers", "_lock")

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._timers: Dict[str, list] = {}
        self._lock = threading.Lock()

    # -- counters -----------------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> int:
        """Increment counter ``name`` and return its new value."""
        with self._lock:
            value = self._counters.get(name, 0) + amount
            self._counters[name] = value
            return value

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    def set_counter(self, name: str, value: int) -> None:
        """Force a counter to an absolute value (back-compat setters)."""
        with self._lock:
            self._counters[name] = value

    # -- gauges -------------------------------------------------------------------

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to an absolute value."""
        with self._lock:
            self._gauges[name] = value

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        return self._gauges.get(name, default)

    # -- timers -------------------------------------------------------------------

    def record_time(self, name: str, seconds: float) -> None:
        """Fold one observation into timer ``name``."""
        with self._lock:
            cell = self._timers.get(name)
            if cell is None:
                self._timers[name] = [1, seconds, seconds, seconds]
            else:
                cell[0] += 1
                cell[1] += seconds
                if seconds < cell[2]:
                    cell[2] = seconds
                if seconds > cell[3]:
                    cell[3] = seconds

    @contextmanager
    def timer(self, name: str):
        """Time a ``with`` block into timer ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record_time(name, time.perf_counter() - start)

    def timer_stats(self, name: str) -> Optional[Dict[str, float]]:
        with self._lock:
            return self._timer_stats_locked(name)

    def _timer_stats_locked(self, name: str) -> Optional[Dict[str, float]]:
        cell = self._timers.get(name)
        if cell is None:
            return None
        count, total, lo, hi = cell
        return {"count": count, "total": total, "min": lo, "max": hi,
                "mean": total / count if count else 0.0}

    # -- snapshots ----------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A deep, JSON-serializable copy of the registry state."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {
                    name: self._timer_stats_locked(name)
                    for name in self._timers
                },
            }

    @staticmethod
    def diff(before: Dict[str, Dict[str, object]],
             after: Dict[str, Dict[str, object]]
             ) -> Dict[str, Dict[str, object]]:
        """What happened between two snapshots.

        Counter and timer-count/total deltas; gauges report their final
        value (a gauge is a level, not a flow).  Keys whose delta is zero
        are omitted so diffs stay readable.
        """
        counters = {}
        for name, value in after.get("counters", {}).items():
            delta = value - before.get("counters", {}).get(name, 0)
            if delta:
                counters[name] = delta
        timers = {}
        for name, stats in after.get("timers", {}).items():
            prior = before.get("timers", {}).get(name)
            count = stats["count"] - (prior["count"] if prior else 0)
            total = stats["total"] - (prior["total"] if prior else 0.0)
            if count:
                timers[name] = {"count": count, "total": total,
                                "mean": total / count}
        return {
            "counters": counters,
            "gauges": dict(after.get("gauges", {})),
            "timers": timers,
        }

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<MetricsRegistry {len(self._counters)} counters "
            f"{len(self._gauges)} gauges {len(self._timers)} timers>"
        )
