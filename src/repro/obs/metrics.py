"""Named counters, gauges and timers with snapshot + diff support.

One :class:`MetricsRegistry` is the single stats surface for a VM: the
execution engine folds its counters into it, telemetry events bump a
counter per event name, and spans accumulate into timers — so a
benchmark run can snapshot before/after and report exactly what the
runtime did in between.

Counters are plain dict increments (cheap enough to stay on even
without tracing); timers record ``(count, total, min, max)`` in seconds
*and* feed a per-timer :class:`~repro.obs.histogram.LogHistogram`, so
``timer_stats`` and ``snapshot()`` report ``p50/p90/p99/p999``
percentiles alongside the scalar summary — the distribution view the
always-on production telemetry is built on.

The registry is thread-safe: one lock guards every mutation, so the
background compile workers and the main thread fold into the same
counters/timers without losing increments.  Counter and gauge reads
stay lock-free (a read racing a write sees the old or the new value,
never a torn one, because ints/floats are replaced wholesale); timer
reads copy the cell *under the lock* — the scalar fields are mutated
one by one, so a lock-free reader could otherwise see a count from one
observation and a total from another.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Optional

from .histogram import SNAPSHOT_PERCENTILES, LogHistogram


class _TimerCell:
    """One timer's accumulator: scalar summary + latency histogram.

    Scalars are mutated field-by-field under the registry lock and must
    only be read under it (copied into immutable snapshots); the
    histogram carries its own lock so it can also be read standalone.
    """

    __slots__ = ("count", "total", "min", "max", "hist")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.hist = LogHistogram()


class MetricsRegistry:
    """Process-local registry of named counters, gauges and timers."""

    __slots__ = ("_counters", "_gauges", "_timers", "_lock")

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._timers: Dict[str, _TimerCell] = {}
        self._lock = threading.Lock()

    # -- counters -----------------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> int:
        """Increment counter ``name`` and return its new value."""
        with self._lock:
            value = self._counters.get(name, 0) + amount
            self._counters[name] = value
            return value

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    def set_counter(self, name: str, value: int) -> None:
        """Force a counter to an absolute value (back-compat setters)."""
        with self._lock:
            self._counters[name] = value

    # -- gauges -------------------------------------------------------------------

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to an absolute value."""
        with self._lock:
            self._gauges[name] = value

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        return self._gauges.get(name, default)

    # -- timers -------------------------------------------------------------------

    def record_time(self, name: str, seconds: float) -> None:
        """Fold one observation into timer ``name`` (scalars + histogram)."""
        with self._lock:
            cell = self._timers.get(name)
            if cell is None:
                cell = self._timers[name] = _TimerCell()
            cell.count += 1
            cell.total += seconds
            if cell.min is None or seconds < cell.min:
                cell.min = seconds
            if cell.max is None or seconds > cell.max:
                cell.max = seconds
            # lock order is always registry -> histogram, never reversed
            cell.hist.record(seconds)

    @contextmanager
    def timer(self, name: str):
        """Time a ``with`` block into timer ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record_time(name, time.perf_counter() - start)

    def timer_stats(self, name: str) -> Optional[Dict[str, float]]:
        """A consistent snapshot of one timer: count/total/min/max/mean
        plus ``p50/p90/p99/p999`` from the attached histogram.

        The cell is copied under the registry lock (its fields are
        mutated one at a time, so a lock-free read could tear — count
        from one observation, total from another).
        """
        with self._lock:
            copied = self._copy_timer_locked(name)
        if copied is None:
            return None
        return self._stats_from_copy(copied)

    def _copy_timer_locked(self, name: str):
        """Immutable (count, total, min, max, hist) copy of one cell;
        caller holds the registry lock."""
        cell = self._timers.get(name)
        if cell is None:
            return None
        return (cell.count, cell.total, cell.min, cell.max, cell.hist)

    @staticmethod
    def _stats_from_copy(copied) -> Dict[str, float]:
        count, total, lo, hi, hist = copied
        stats = {"count": count, "total": total, "min": lo, "max": hi,
                 "mean": total / count if count else 0.0}
        percentiles = hist.percentiles([p for _, p in SNAPSHOT_PERCENTILES])
        for key, p in SNAPSHOT_PERCENTILES:
            stats[key] = percentiles[p]
        return stats

    def timer_histogram(self, name: str) -> Optional[LogHistogram]:
        """The live histogram behind timer ``name`` (None if absent)."""
        with self._lock:
            cell = self._timers.get(name)
            return cell.hist if cell is not None else None

    # -- snapshots ----------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A deep, JSON-serializable copy of the registry state."""
        with self._lock:
            copies = {name: self._copy_timer_locked(name)
                      for name in self._timers}
            counters = dict(self._counters)
            gauges = dict(self._gauges)
        return {
            "counters": counters,
            "gauges": gauges,
            "timers": {name: self._stats_from_copy(copied)
                       for name, copied in copies.items()},
        }

    @staticmethod
    def diff(before: Dict[str, Dict[str, object]],
             after: Dict[str, Dict[str, object]]
             ) -> Dict[str, Dict[str, object]]:
        """What happened between two snapshots.

        Counter and timer-count/total deltas; gauges report their final
        value (a gauge is a level, not a flow).  Keys whose delta is zero
        are omitted so diffs stay readable.
        """
        counters = {}
        for name, value in after.get("counters", {}).items():
            delta = value - before.get("counters", {}).get(name, 0)
            if delta:
                counters[name] = delta
        timers = {}
        for name, stats in after.get("timers", {}).items():
            prior = before.get("timers", {}).get(name)
            count = stats["count"] - (prior["count"] if prior else 0)
            total = stats["total"] - (prior["total"] if prior else 0.0)
            if count:
                timers[name] = {"count": count, "total": total,
                                "mean": total / count}
        return {
            "counters": counters,
            "gauges": dict(after.get("gauges", {})),
            "timers": timers,
        }

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<MetricsRegistry {len(self._counters)} counters "
            f"{len(self._gauges)} gauges {len(self._timers)} timers>"
        )
