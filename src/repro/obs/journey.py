"""Per-function tier-journey reports assembled from the event stream.

A *journey* is the compilation life story of one function, read off a
telemetry trace: decode (fusion/bailout) → hotness threshold → enqueue
→ background compile → publish → promotion → OSR fires → guard
failures/deopts → respecialization → invalidation/demotion → pinning.
The builder groups the closed-vocabulary events by the function they
name and orders them by timestamp, so the report answers the two
questions production triage actually asks:

* *what happened to this function, in order, and when?*
* *why is this function still at baseline?* — diagnosed from the shape
  of the journey (never got hot, decode bailed out, tier-up queued but
  discarded, pinned by deopt thrash, ...).

Works on a live telemetry's raw events or on an exported Chrome trace
(``python -m repro.obs journey trace.json``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from . import events as EV

#: events that appear in a journey, with the arg naming its function
#: (checked in order; the first present wins)
_FUNCTION_ARGS = ("function", "continuation", "target")

#: journey-relevant event names (everything else is skipped)
JOURNEY_EVENTS = frozenset({
    EV.DECODE_BAILOUT, EV.DECODE_FUSE,
    EV.PROFILE_CALL_HOT, EV.PROFILE_BACKEDGE_HOT,
    EV.COMPILE_QUEUE, EV.COMPILE_START, EV.COMPILE_INSTALL,
    EV.COMPILE_DISCARD,
    EV.JIT_COMPILE, EV.JIT_CACHE_HIT, EV.JIT_CACHE_MISS,
    EV.TIER_PROMOTE, EV.TIER_DEMOTE, EV.ENGINE_INVALIDATE,
    EV.OSR_INSERT, EV.OSR_FIRE,
    EV.FEVAL_SPECIALIZE, EV.FEVAL_CACHE_HIT, EV.FEVAL_GUARD_FAIL,
    EV.SPEC_SPECIALIZE, EV.SPEC_DISPATCH, EV.SPEC_RESPECIALIZE,
    EV.SPEC_PINNED,
    EV.DEOPT_GUARD_FAIL, EV.DEOPT_EXIT, EV.DEOPT_INVALIDATE,
})


class Journey:
    """One function's ordered event timeline plus derived verdicts."""

    def __init__(self, function: str):
        self.function = function
        #: (ts_us, event name, args) in stream order
        self.steps: List[Tuple[float, str, Dict[str, object]]] = []

    def count(self, name: str) -> int:
        return sum(1 for _, event, _ in self.steps if event == name)

    def first(self, name: str) -> Optional[Tuple[float, Dict[str, object]]]:
        for ts, event, args in self.steps:
            if event == name:
                return ts, args
        return None

    @property
    def promoted(self) -> bool:
        return self.count(EV.TIER_PROMOTE) > 0

    @property
    def start_us(self) -> float:
        return self.steps[0][0] if self.steps else 0.0

    def diagnose(self) -> str:
        """One-line verdict; for unpromoted functions, *why* they are
        still at baseline."""
        if self.promoted:
            promote = self.first(EV.TIER_PROMOTE)
            verdict = (f"promoted at +{promote[0] - self.start_us:.0f}us")
            demotes = self.count(EV.TIER_DEMOTE)
            if demotes:
                verdict += f", demoted {demotes}x"
            pins = self.count(EV.SPEC_PINNED)
            if pins:
                verdict += ", then pinned to baseline by deopt thrash"
            return verdict
        if self.count(EV.SPEC_PINNED):
            return ("at baseline: pinned by the deopt-thrash limit "
                    f"after {self.count(EV.DEOPT_GUARD_FAIL)} guard failures")
        bailout = self.first(EV.DECODE_BAILOUT)
        if bailout is not None:
            reason = bailout[1].get("reason", "?")
            return (f"at baseline: decode bailed out ({reason}) — running "
                    "the tree-walking interpreter")
        queued = self.count(EV.COMPILE_QUEUE)
        if queued and not self.count(EV.COMPILE_INSTALL):
            discards = self.count(EV.COMPILE_DISCARD)
            return ("at baseline: tier-up queued but never published "
                    f"({queued} submitted, {discards} discarded)")
        hot = (self.count(EV.PROFILE_CALL_HOT)
               + self.count(EV.PROFILE_BACKEDGE_HOT))
        if not hot:
            return "at baseline: never crossed the hotness thresholds"
        return "at baseline: hot, but no compile was observed"


def _normalize(events: Iterable[Dict[str, object]]
               ) -> List[Tuple[float, str, str, Dict[str, object]]]:
    """(ts_us, name, ph, args) from raw tracer events (ns timestamps)
    or Chrome trace events (µs timestamps, ``pid`` present)."""
    out = []
    for event in events:
        name = event.get("name")
        ph = event.get("ph", "i")
        if not isinstance(name, str):
            continue
        ts = event.get("ts", 0)
        if "pid" not in event:
            ts = ts / 1000.0  # raw tracer: ns -> µs
        out.append((float(ts), name, str(ph), dict(event.get("args") or {})))
    return out


def build_journeys(events: Iterable[Dict[str, object]]
                   ) -> Dict[str, Journey]:
    """Group a trace's events into per-function journeys.

    ``events`` may be raw tracer/flight events or Chrome trace events;
    span end markers (``E``) are skipped — the begin/complete event
    carries the args.
    """
    journeys: Dict[str, Journey] = {}
    for ts, name, ph, args in _normalize(events):
        if ph == "E" or name not in JOURNEY_EVENTS:
            continue
        function = None
        for key in _FUNCTION_ARGS:
            value = args.get(key)
            if isinstance(value, str):
                function = value
                break
        if function is None:
            continue
        # continuations/specializations roll up under their base
        # function so a journey reads as one story ("f.deopt" -> "f")
        base = function.split(".", 1)[0].split("_to", 1)[0]
        journey = journeys.get(base)
        if journey is None:
            journey = journeys[base] = Journey(base)
        journey.steps.append((ts, name, args))
    return journeys


def _format_args(args: Dict[str, object]) -> str:
    shown = {k: v for k, v in args.items()
             if k not in ("function",)}
    if not shown:
        return ""
    return " " + " ".join(f"{k}={v}" for k, v in sorted(shown.items()))


def format_journeys(journeys: Dict[str, Journey],
                    function: Optional[str] = None,
                    max_steps: int = 20) -> str:
    """The human-readable journey report (one block per function)."""
    names = sorted(journeys)
    if function is not None:
        names = [name for name in names if name == function]
        if not names:
            return f"no journey recorded for function {function!r}"
    lines: List[str] = []
    for name in names:
        journey = journeys[name]
        lines.append(f"@{name} — {journey.diagnose()}")
        start = journey.start_us
        steps = journey.steps
        shown = steps[:max_steps]
        for ts, event, args in shown:
            lines.append(
                f"  +{ts - start:>10.0f}us {event:<22}{_format_args(args)}"
            )
        if len(steps) > len(shown):
            lines.append(f"  ... {len(steps) - len(shown)} more events")
        lines.append("")
    if not lines:
        return "(no journey events in trace)"
    return "\n".join(lines).rstrip()
