"""Flight recorder: a bounded, always-on ring buffer of telemetry events.

The full :class:`~repro.obs.tracer.Tracer` keeps an unbounded event
list — perfect for experiments, unusable always-on (a server-style
``tiered-bg`` engine would grow it without limit).  The
:class:`FlightRecorder` is the production substitute: a fixed-capacity
ring that keeps the *most recent* events, counts what it dropped, and
can dump its contents as a Chrome trace at any moment — on demand, or
automatically when an anomaly trips.

It duck-types the tracer interface (``instant``/``begin``/``end``/
``events``/``open_spans``/``clear``), so a :class:`~repro.obs.Telemetry`
built over it (see :func:`repro.obs.production_telemetry`) drives every
existing hook site unchanged.  The one representational difference:
finished spans are recorded as single *complete* events (``ph: "X"``
with a ``dur`` in ns) rather than B/E pairs — a ring that dropped the
``B`` half of a pair would otherwise dump an unbalanced trace.

Anomaly triggers (each records a ``flight.anomaly`` instant, remembers
the reason, and — when ``dump_path`` is set — writes the ring to disk
so the events *leading up to* the anomaly survive):

* **deopt-thrash pin** — a ``spec.pinned`` event (the speculation
  manager gave up on a function);
* **invalidation storm** — ``storm_threshold`` or more
  ``engine.invalidate`` events inside ``storm_window_s`` seconds;
* **uncaught trap** — the engine reports a :class:`Trap` escaping a
  top-level call (``engine.call`` wires this up).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from . import events as EV

#: default ring capacity — at ~100 bytes/event this is well under a MB
DEFAULT_CAPACITY = 4096


class FlightRecorder:
    """Drop-oldest bounded event recorder, API-compatible with Tracer."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 clock: Optional[Callable[[], int]] = None,
                 dump_path: Optional[str] = None,
                 storm_threshold: int = 8,
                 storm_window_s: float = 0.5):
        if capacity < 1:
            raise ValueError("FlightRecorder needs capacity >= 1")
        self.capacity = capacity
        self.dump_path = dump_path
        self._clock = clock if clock is not None else time.perf_counter_ns
        self._ring: List[Optional[Dict[str, object]]] = [None] * capacity
        self._next = 0
        self._lock = threading.Lock()
        self._stack: List[Tuple[str, int]] = []  # open spans: (name, ts)
        self._last_ts = 0
        self._buffered = 0
        #: lifetime totals — ``recorded - dropped`` events survived all
        #: rings this recorder has held (``clear`` empties the ring but
        #: keeps the lifetime counters)
        self.recorded = 0
        self.dropped = 0
        #: anomalies tripped so far: (reason, ts ns) in firing order
        self.anomalies: List[Tuple[str, int]] = []
        self._storm_threshold = storm_threshold
        self._storm_window_ns = int(storm_window_s * 1e9)
        self._invalidate_ts: deque = deque()

    # -- clock --------------------------------------------------------------------

    def _now(self) -> int:
        ts = self._clock()
        if ts < self._last_ts:
            ts = self._last_ts
        self._last_ts = ts
        return ts

    # -- recording (the Tracer interface) -----------------------------------------

    def _append_locked(self, event: Dict[str, object]) -> None:
        if self._ring[self._next] is not None:
            self.dropped += 1
        else:
            self._buffered += 1
        self._ring[self._next] = event
        self._next = (self._next + 1) % self.capacity
        self.recorded += 1

    def instant(self, name: str, args: Dict[str, object]) -> None:
        anomaly: Optional[str] = None
        with self._lock:
            ts = self._now()
            self._append_locked(
                {"name": name, "ph": "i", "ts": ts, "args": args}
            )
            anomaly = self._check_anomaly_locked(name, ts)
        if anomaly is not None:
            self.anomaly(anomaly)

    def begin(self, name: str, args: Dict[str, object]) -> None:
        with self._lock:
            self._stack.append((name, self._now()))

    def end(self, name: str) -> float:
        """Close the innermost span, recording it as one complete event;
        returns its duration in seconds."""
        with self._lock:
            ts = self._now()
            if not self._stack:
                raise RuntimeError(f"end({name!r}) with no open span")
            begin_name, begin_ts = self._stack.pop()
            if begin_name != name:
                raise RuntimeError(
                    f"end({name!r}) but innermost open span is "
                    f"{begin_name!r}"
                )
            self._append_locked(
                {"name": name, "ph": "X", "ts": begin_ts,
                 "dur": ts - begin_ts, "args": {}}
            )
            return (ts - begin_ts) / 1e9

    @property
    def events(self) -> List[Dict[str, object]]:
        """Snapshot of the ring, oldest first."""
        with self._lock:
            ordered = self._ring[self._next:] + self._ring[:self._next]
        return [event for event in ordered if event is not None]

    @property
    def open_spans(self) -> int:
        return len(self._stack)

    def clear(self) -> None:
        if self._stack:
            raise RuntimeError("cannot clear a recorder with open spans")
        with self._lock:
            self._ring = [None] * self.capacity
            self._next = 0
            self._buffered = 0

    def __len__(self) -> int:
        return self._buffered

    # -- anomalies ----------------------------------------------------------------

    def _check_anomaly_locked(self, name: str, ts: int) -> Optional[str]:
        if name == EV.SPEC_PINNED:
            return "deopt-thrash-pin"
        if name == EV.ENGINE_INVALIDATE:
            window = self._invalidate_ts
            window.append(ts)
            floor = ts - self._storm_window_ns
            while window and window[0] < floor:
                window.popleft()
            if len(window) >= self._storm_threshold:
                window.clear()  # re-arm: one anomaly per storm
                return "invalidation-storm"
        return None

    def anomaly(self, reason: str) -> None:
        """Record an anomaly: remember it, mark the stream, and dump the
        ring to ``dump_path`` when one is configured."""
        with self._lock:
            ts = self._now()
            self.anomalies.append((reason, ts))
            self._append_locked(
                {"name": EV.FLIGHT_ANOMALY, "ph": "i", "ts": ts,
                 "args": {"reason": reason, "index": len(self.anomalies)}}
            )
        if self.dump_path is not None:
            self.dump(self.dump_path)

    # -- export -------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        return {
            "capacity": self.capacity,
            "buffered": len(self),
            "recorded": self.recorded,
            "dropped": self.dropped,
            "anomalies": [reason for reason, _ in self.anomalies],
        }

    def dump(self, path: str) -> None:
        """Write the ring's current contents as a Chrome trace document."""
        import json

        from .export import chrome_events_from_raw

        document = {
            "traceEvents": chrome_events_from_raw(self.events),
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs.flight",
                          **{k: v for k, v in self.stats().items()
                             if k != "anomalies"}},
        }
        with open(path, "w") as fh:
            json.dump(document, fh, indent=1)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<FlightRecorder {len(self)}/{self.capacity} "
                f"dropped={self.dropped} anomalies={len(self.anomalies)}>")
