"""Structured event tracing with a cheap, nestable span/event API.

The tracer records a flat, append-only list of event dicts —
``{"name", "ph", "ts", "args"}`` with nanosecond timestamps — that the
exporters turn into Chrome trace-event JSON, tables or stats documents.
Spans are balanced ``B``/``E`` pairs maintained through a context
manager, so streams are well formed by construction (and
:func:`repro.obs.events.validate_events` checks it independently).

The clock is injectable for deterministic tests; the default is
:func:`time.perf_counter_ns`.

Emission is thread-safe: a lock makes each (clock read, append) pair
atomic, so instants recorded by background compile workers interleave
with the main thread's stream without breaking timestamp monotonicity.
Spans stay a single-thread affair — the B/E stack is one per tracer —
which is why the background queue emits only instants.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional


class _SpanGuard:
    """Context manager closing one span; created per ``span()`` call."""

    __slots__ = ("_tracer", "_name")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_SpanGuard":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer.end(self._name)


class Tracer:
    """Collects trace events; one per :class:`~repro.obs.Telemetry`."""

    __slots__ = ("events", "_clock", "_stack", "_last_ts", "_lock")

    def __init__(self, clock: Optional[Callable[[], int]] = None):
        self.events: List[Dict[str, object]] = []
        self._clock = clock if clock is not None else time.perf_counter_ns
        self._stack: List[int] = []  # indices of open B events
        self._last_ts: int = 0
        self._lock = threading.Lock()

    def _now(self) -> int:
        # clamp so a non-monotonic injected clock cannot corrupt the
        # stream invariant the exporters rely on
        ts = self._clock()
        if ts < self._last_ts:
            ts = self._last_ts
        self._last_ts = ts
        return ts

    def instant(self, name: str, args: Dict[str, object]) -> None:
        with self._lock:
            self.events.append(
                {"name": name, "ph": "i", "ts": self._now(), "args": args}
            )

    def begin(self, name: str, args: Dict[str, object]) -> None:
        with self._lock:
            self._stack.append(len(self.events))
            self.events.append(
                {"name": name, "ph": "B", "ts": self._now(), "args": args}
            )

    def end(self, name: str) -> float:
        """Close the innermost span; returns its duration in seconds."""
        with self._lock:
            ts = self._now()
            if not self._stack:
                raise RuntimeError(f"end({name!r}) with no open span")
            begin_index = self._stack.pop()
            begin_event = self.events[begin_index]
            if begin_event["name"] != name:
                raise RuntimeError(
                    f"end({name!r}) but innermost open span is "
                    f"{begin_event['name']!r}"
                )
            self.events.append(
                {"name": name, "ph": "E", "ts": ts, "args": {}}
            )
            return (ts - begin_event["ts"]) / 1e9

    def span(self, name: str, args: Dict[str, object]) -> _SpanGuard:
        """Open a span closed at ``with`` exit."""
        self.begin(name, args)
        return _SpanGuard(self, name)

    @property
    def open_spans(self) -> int:
        return len(self._stack)

    def clear(self) -> None:
        if self._stack:
            raise RuntimeError("cannot clear a tracer with open spans")
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Tracer {len(self.events)} events>"
