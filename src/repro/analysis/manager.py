"""Cached, invalidation-aware analyses — LLVM's new-pass-manager idea.

The OSR machinery consults the same handful of analyses (liveness,
dominators, loops) over and over for the same function body: resolved
and open OSR insertion both need liveness at the instrumentation point,
continuation generation needs it again at the landing block, speculation
re-derives loop info for every specialization of an unchanged baseline.
Rebuilding each result from scratch at every use site is pure waste —
the ``code_version`` stamp that already keys the JIT code cache keys an
analysis cache just as well.

:class:`AnalysisManager` computes lazily and caches per
``(function, code_version)``; transform passes return a
:class:`PreservedAnalyses` set so invalidation is selective — a pass
that rewrites instructions but not the CFG keeps the dominator tree and
loop forest cached while liveness is recomputed.  As a safety net
against bodies mutated without a version bump, every cached entry also
records a structural stamp (block count for CFG-level analyses, full
``code_shape()`` for body-level ones) checked on lookup.

Cache hits, misses and invalidations feed the closed telemetry
vocabulary (``analysis.cache_hit`` / ``analysis.cache_miss`` /
``analysis.invalidate``) and the manager's own counters, surfaced by
``ExecutionEngine.stats_snapshot()["analysis"]``.

The manager is thread-safe: background compile workers and the main
thread share one cache, so a reentrant lock serializes every query and
invalidation.  Computation happens under the lock — two threads asking
for the same analysis never race a half-built result into the cache,
at the cost of serializing concurrent computes (they are cold-path).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, FrozenSet, NamedTuple, Optional, Tuple

from ..ir.function import Function
from ..obs import events as EV
from ..obs.telemetry import ambient as ambient_telemetry
from .dominators import DominatorTree
from .escape import EscapeInfo, _same_escape
from .liveness import LivenessInfo
from .loops import LoopInfo

#: granularity of the structural stamp guarding a cached entry: CFG-level
#: results survive instruction-only rewrites, body-level results do not
GRANULARITY_CFG = "cfg"
GRANULARITY_BODY = "body"


def _same_domtree(a: DominatorTree, b: DominatorTree) -> bool:
    def key(tree):
        return {id(block): id(dom) for block, dom in tree.idom.items()}

    return key(a) == key(b)


def _same_loops(a: LoopInfo, b: LoopInfo) -> bool:
    def key(info):
        return {
            (id(loop.header), frozenset(id(block) for block in loop.blocks))
            for loop in info.loops
        }

    return key(a) == key(b)


def _same_liveness(a: LivenessInfo, b: LivenessInfo) -> bool:
    def key(sets):
        return {
            id(block): frozenset(id(v) for v in values)
            for block, values in sets.items()
        }

    return (key(a.live_in) == key(b.live_in)
            and key(a.live_out) == key(b.live_out))


class AnalysisSpec(NamedTuple):
    """One registered analysis: how to compute it, how coarse a
    structural stamp guards it, and how to compare two results (the
    preservation-honesty property test recomputes and compares)."""

    name: str
    compute: Callable[[Function], object]
    granularity: str
    same_result: Callable[[object, object], bool]


#: the closed registry of managed analyses
ANALYSES: Dict[str, AnalysisSpec] = {
    "liveness": AnalysisSpec(
        "liveness", LivenessInfo, GRANULARITY_BODY, _same_liveness
    ),
    "domtree": AnalysisSpec(
        "domtree", DominatorTree, GRANULARITY_CFG, _same_domtree
    ),
    "loops": AnalysisSpec(
        "loops", LoopInfo, GRANULARITY_CFG, _same_loops
    ),
    "escape": AnalysisSpec(
        "escape", EscapeInfo, GRANULARITY_BODY, _same_escape
    ),
}


def analysis_stamp(func: Function, granularity: str = GRANULARITY_BODY
                   ) -> Tuple[int, ...]:
    """Structural fingerprint guarding a cached entry (or compiled code:
    the JIT cache checks the same body-level stamp)."""
    blocks, insts = func.code_shape()
    if granularity == GRANULARITY_CFG:
        return (blocks,)
    return (blocks, insts)


class PreservedAnalyses:
    """The set of analyses a transform pass left valid.

    Every managed pass returns one; :meth:`AnalysisManager.invalidate`
    keeps the named entries cached (re-keyed to the bumped version) and
    drops the rest.  ``all()`` means the pass changed nothing — no
    invalidation, no version bump.
    """

    __slots__ = ("_all", "_names")

    def __init__(self, names: FrozenSet[str] = frozenset(),
                 preserve_all: bool = False):
        self._all = preserve_all
        self._names = frozenset(names)

    @classmethod
    def all(cls) -> "PreservedAnalyses":
        """The IR was not modified: everything stays valid."""
        return _PRESERVED_ALL

    @classmethod
    def none(cls) -> "PreservedAnalyses":
        """The pass gives no guarantees: drop every cached result."""
        return _PRESERVED_NONE

    @classmethod
    def preserve(cls, *names: str) -> "PreservedAnalyses":
        unknown = [n for n in names if n not in ANALYSES]
        if unknown:
            raise KeyError(f"unknown analyses: {unknown}")
        return cls(frozenset(names))

    @classmethod
    def cfg_only(cls) -> "PreservedAnalyses":
        """Instructions changed but the CFG did not: every CFG-level
        analysis survives (the common case for instruction rewrites)."""
        return cls(frozenset(
            name for name, spec in ANALYSES.items()
            if spec.granularity == GRANULARITY_CFG
        ))

    @property
    def preserves_all(self) -> bool:
        return self._all

    def preserves(self, name: str) -> bool:
        return self._all or name in self._names

    def preserved_names(self) -> FrozenSet[str]:
        if self._all:
            return frozenset(ANALYSES)
        return self._names

    def __repr__(self) -> str:  # pragma: no cover
        if self._all:
            return "PreservedAnalyses.all()"
        if not self._names:
            return "PreservedAnalyses.none()"
        return f"PreservedAnalyses.preserve({', '.join(sorted(self._names))})"


_PRESERVED_ALL = PreservedAnalyses(preserve_all=True)
_PRESERVED_NONE = PreservedAnalyses()


class _Cell:
    """Cached results for one function at one code version.

    Holds a strong reference to the function: cells are keyed by
    ``id(func)``, and the reference guarantees the id is not reused
    while the cell is alive.  The manager's LRU cap bounds how many
    functions are kept.
    """

    __slots__ = ("func", "version", "results")

    def __init__(self, func: Function):
        self.func = func
        self.version = func.code_version
        #: analysis name -> (stamp, result)
        self.results: Dict[str, Tuple[Tuple[int, ...], object]] = {}


class AnalysisManager:
    """Lazily computes and caches analysis results per function version.

    ``bypass=True`` disables caching (every query recomputes) — the
    control arm of ``benchmarks/bench_analysis.py``.
    """

    def __init__(self, telemetry=None, bypass: bool = False,
                 max_functions: int = 256):
        #: attached telemetry; ``None`` resolves the ambient sink per
        #: emission so a ``repro.obs.trace`` block is picked up live
        self.telemetry = telemetry
        self.bypass = bypass
        self.max_functions = max_functions
        self._cells: "OrderedDict[int, _Cell]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        #: reentrant so invalidate() can be called from a context that
        #: already holds the lock (e.g. a pass pipeline under an engine
        #: lock that also queries analyses)
        self._lock = threading.RLock()

    # -- telemetry ---------------------------------------------------------------

    def _tel(self):
        return (self.telemetry if self.telemetry is not None
                else ambient_telemetry())

    # -- queries -----------------------------------------------------------------

    def get(self, name: str, func: Function):
        """The ``name`` analysis of ``func``, cached per code version."""
        spec = ANALYSES[name]
        with self._lock:
            if self.bypass:
                self.misses += 1
                return spec.compute(func)
            cell = self._cells.get(id(func))
            if cell is not None and cell.func is func:
                if cell.version != func.code_version:
                    # stale version: the single-version cell is replaced
                    cell.version = func.code_version
                    cell.results.clear()
                else:
                    entry = cell.results.get(name)
                    if (entry is not None
                            and entry[0] == analysis_stamp(
                                func, spec.granularity)):
                        self.hits += 1
                        self._cells.move_to_end(id(func))
                        tel = self._tel()
                        if tel.enabled:
                            tel.event(EV.ANALYSIS_CACHE_HIT,
                                      function=func.name, analysis=name)
                        return entry[1]
            self.misses += 1
            tel = self._tel()
            if tel.enabled:
                tel.event(EV.ANALYSIS_CACHE_MISS,
                          function=func.name, analysis=name,
                          code_version=func.code_version)
            result = spec.compute(func)
            if cell is None or cell.func is not func:
                cell = _Cell(func)
                self._cells[id(func)] = cell
            cell.results[name] = (
                analysis_stamp(func, spec.granularity), result
            )
            self._cells.move_to_end(id(func))
            while len(self._cells) > self.max_functions:
                self._cells.popitem(last=False)
            return result

    def liveness(self, func: Function) -> LivenessInfo:
        return self.get("liveness", func)

    def dominator_tree(self, func: Function) -> DominatorTree:
        return self.get("domtree", func)

    def loop_info(self, func: Function) -> LoopInfo:
        return self.get("loops", func)

    def escape_info(self, func: Function) -> EscapeInfo:
        return self.get("escape", func)

    def cached(self, name: str, func: Function):
        """Peek: the cached result for the *current* version, or None.
        Never computes and never counts as a hit or miss."""
        with self._lock:
            cell = self._cells.get(id(func))
            if cell is None or cell.func is not func:
                return None
            if cell.version != func.code_version:
                return None
            entry = cell.results.get(name)
            if entry is None:
                return None
            if entry[0] != analysis_stamp(func, ANALYSES[name].granularity):
                return None
            return entry[1]

    # -- invalidation ------------------------------------------------------------

    def invalidate(self, func: Function,
                   preserved: Optional[PreservedAnalyses] = None) -> int:
        """The function's body was rewritten: bump its ``code_version``
        and drop cached analyses not named in ``preserved``.

        Preserved entries are migrated to the new version key (their
        structural stamp refreshed against the rewritten body), so e.g.
        DCE keeps the dominator tree hot while liveness is recomputed.
        Returns the new code version.

        ``invalidate(func, PreservedAnalyses.all())`` still bumps the
        version — callers decide whether an unchanged body needs one by
        not calling invalidate at all (see ``PassManager.run``).
        """
        with self._lock:
            old_version = func.code_version
            new_version = func.bump_code_version()
            self.invalidations += 1
            kept = 0
            cell = self._cells.get(id(func))
            if cell is not None and cell.func is func:
                migrated: Dict[str, Tuple[Tuple[int, ...], object]] = {}
                if preserved is not None and cell.version == old_version:
                    for name, (stamp, result) in cell.results.items():
                        if preserved.preserves(name):
                            spec = ANALYSES[name]
                            migrated[name] = (
                                analysis_stamp(func, spec.granularity), result
                            )
                if migrated:
                    cell.version = new_version
                    cell.results = migrated
                    kept = len(migrated)
                else:
                    del self._cells[id(func)]
            tel = self._tel()
            if tel.enabled:
                tel.event(EV.ANALYSIS_INVALIDATE, function=func.name,
                          code_version=new_version, preserved=kept)
            return new_version

    def forget(self, func: Function) -> None:
        """Drop every cached result for ``func`` without touching its
        code version (e.g. the function is being discarded)."""
        with self._lock:
            self._cells.pop(id(func), None)

    def clear(self) -> None:
        with self._lock:
            self._cells.clear()

    # -- statistics --------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Cache counters, the shape ``stats_snapshot()["analysis"]``
        exposes.  ``hits``/``misses`` mirror the ``analysis.cache_hit``
        / ``analysis.cache_miss`` telemetry counters one-for-one."""
        with self._lock:
            queries = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "hit_rate": (self.hits / queries) if queries else 0.0,
                "functions": len(self._cells),
                "entries": sum(len(c.results) for c in self._cells.values()),
                "bypass": self.bypass,
            }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<AnalysisManager hits={self.hits} misses={self.misses} "
                f"functions={len(self._cells)}>")


_default_manager: Optional[AnalysisManager] = None


def default_manager() -> AnalysisManager:
    """The process-wide manager engines and module-level helpers share
    when no explicit manager is threaded through."""
    global _default_manager
    if _default_manager is None:
        _default_manager = AnalysisManager()
    return _default_manager


def resolve_manager(am: Optional[AnalysisManager]) -> AnalysisManager:
    """``am`` if given, else the process-wide default — the idiom every
    ``am=None`` convenience parameter resolves through."""
    return am if am is not None else default_manager()
