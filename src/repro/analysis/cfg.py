"""Control-flow graph utilities.

Thin, allocation-light helpers over the block/terminator structure:
predecessor maps, traversal orders, reachability.  All analyses in this
package take a snapshot view — they do not auto-invalidate, matching how
LLVM passes recompute analyses after mutation.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set

from ..ir.function import BasicBlock, Function


def successors(block: BasicBlock) -> List[BasicBlock]:
    return block.successors()


def predecessor_map(func: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    """Map each block to its CFG predecessors, in block order."""
    preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in func.blocks}
    for block in func.blocks:
        for succ in block.successors():
            if succ in preds and block not in preds[succ]:
                preds[succ].append(block)
    return preds


def reachable_blocks(func: Function) -> Set[BasicBlock]:
    """Blocks reachable from the entry block."""
    seen: Set[BasicBlock] = set()
    stack = [func.entry]
    while stack:
        block = stack.pop()
        if block in seen:
            continue
        seen.add(block)
        stack.extend(block.successors())
    return seen


def depth_first_order(func: Function) -> List[BasicBlock]:
    """Preorder DFS from the entry block (reachable blocks only)."""
    seen: Set[BasicBlock] = set()
    order: List[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        if block in seen:
            return
        seen.add(block)
        order.append(block)
        for succ in block.successors():
            visit(succ)

    visit(func.entry)
    return order


def post_order(func: Function) -> List[BasicBlock]:
    """Postorder DFS from the entry block (iterative, recursion-safe)."""
    seen: Set[BasicBlock] = set()
    order: List[BasicBlock] = []
    stack: List[tuple] = [(func.entry, iter(func.entry.successors()))]
    seen.add(func.entry)
    while stack:
        block, it = stack[-1]
        advanced = False
        for succ in it:
            if succ not in seen:
                seen.add(succ)
                stack.append((succ, iter(succ.successors())))
                advanced = True
                break
        if not advanced:
            order.append(block)
            stack.pop()
    return order


def reverse_post_order(func: Function) -> List[BasicBlock]:
    """RPO — the canonical forward-dataflow iteration order."""
    return list(reversed(post_order(func)))


def remove_unreachable_blocks(func: Function) -> List[BasicBlock]:
    """Erase blocks not reachable from entry; returns the removed blocks.

    Phi nodes in surviving blocks are cleaned of incoming entries from the
    removed blocks, which is exactly the cleanup OSR continuation generation
    relies on after redirecting the entry point (paper, Figure 7).
    """
    reachable = reachable_blocks(func)
    removed = [b for b in func.blocks if b not in reachable]
    if not removed:
        return []
    removed_set = set(removed)
    # first detach instructions so cross-references between dead blocks
    # do not keep uses alive
    for block in removed:
        for inst in list(block.instructions):
            inst.drop_all_references()
    for block in func.blocks:
        if block in removed_set:
            continue
        for phi in block.phis:
            for dead in removed:
                if phi.has_incoming_for(dead):
                    phi.remove_incoming(dead)
    for block in removed:
        for inst in list(block.instructions):
            block.remove(inst)
        func.remove_block(block)
    return removed


def split_edge(pred: BasicBlock, succ: BasicBlock) -> BasicBlock:
    """Insert a fresh block on the CFG edge ``pred -> succ``.

    Returns the new block.  Phi nodes in ``succ`` are retargeted so their
    incoming entries for ``pred`` now name the new block.  This is the
    standard critical-edge split used when inserting OSR firing blocks.
    """
    from ..ir.builder import IRBuilder

    func = pred.parent
    new_block = BasicBlock(f"{pred.name}.{succ.name}.split")
    func.add_block(new_block, after=pred)
    IRBuilder(new_block).br(succ)
    pred.terminator.replace_successor(succ, new_block)
    for phi in succ.phis:
        phi.replace_incoming_block(pred, new_block)
    return new_block
