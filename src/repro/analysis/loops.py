"""Natural-loop detection.

Finds back edges (``latch -> header`` where the header dominates the
latch) and materializes the natural loop of each back edge.  OSR point
placement uses this to find "hottest loop" bodies, mirroring the paper's
Q1-Q3 methodology (OSR points in the body of the hottest loops, as the
Jikes RVM places yield points on backward branches).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.function import BasicBlock, Function
from .cfg import predecessor_map, reachable_blocks
from .dominators import DominatorTree


class Loop:
    """A natural loop: header plus the set of blocks that reach the latch
    without passing through the header."""

    def __init__(self, header: BasicBlock, blocks: Set[BasicBlock],
                 latches: List[BasicBlock]):
        self.header = header
        self.blocks = blocks
        self.latches = latches
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []

    @property
    def depth(self) -> int:
        depth = 1
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks

    def exit_blocks(self) -> List[BasicBlock]:
        """Blocks outside the loop targeted by edges from inside it."""
        exits: List[BasicBlock] = []
        for block in self.blocks:
            for succ in block.successors():
                if succ not in self.blocks and succ not in exits:
                    exits.append(succ)
        return exits

    @property
    def body_blocks(self) -> List[BasicBlock]:
        """Loop blocks other than the header, in function layout order."""
        func = self.header.parent
        return [b for b in func.blocks if b in self.blocks and b is not self.header]

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Loop header=%{self.header.name} blocks={len(self.blocks)}>"


class LoopInfo:
    """All natural loops of a function, nested into a loop forest."""

    def __init__(self, func: Function):
        self.function = func
        self.loops: List[Loop] = []
        self._compute()

    def _compute(self) -> None:
        func = self.function
        domtree = DominatorTree(func)
        preds = predecessor_map(func)
        reachable = reachable_blocks(func)

        # group back edges by header so each header yields one loop
        back_edges: Dict[BasicBlock, List[BasicBlock]] = {}
        for block in func.blocks:
            if block not in reachable:
                continue
            for succ in block.successors():
                if succ in reachable and domtree.dominates(succ, block):
                    back_edges.setdefault(succ, []).append(block)

        for header, latches in back_edges.items():
            blocks: Set[BasicBlock] = {header}
            stack = list(latches)
            while stack:
                block = stack.pop()
                if block in blocks:
                    continue
                blocks.add(block)
                stack.extend(p for p in preds[block] if p in reachable)
            self.loops.append(Loop(header, blocks, latches))

        # nest loops: a loop is a child of the smallest loop strictly
        # containing its header
        by_size = sorted(self.loops, key=lambda l: len(l.blocks))
        for loop in by_size:
            for candidate in by_size:
                if candidate is loop:
                    continue
                if (loop.header in candidate.blocks
                        and len(candidate.blocks) > len(loop.blocks)):
                    if (loop.parent is None
                            or len(candidate.blocks) < len(loop.parent.blocks)):
                        loop.parent = candidate
        for loop in self.loops:
            if loop.parent is not None:
                loop.parent.children.append(loop)

    @property
    def top_level(self) -> List[Loop]:
        return [l for l in self.loops if l.parent is None]

    def loop_for(self, block: BasicBlock) -> Optional[Loop]:
        """The innermost loop containing ``block``, if any."""
        best: Optional[Loop] = None
        for loop in self.loops:
            if block in loop.blocks:
                if best is None or len(loop.blocks) < len(best.blocks):
                    best = loop
        return best

    def innermost_loops(self) -> List[Loop]:
        return [l for l in self.loops if not l.children]
