"""Live-variable analysis.

OSRKit's central analysis: to instrument a point ``L`` we must know the set
of SSA values (arguments and instruction results) that are *live* at ``L``
— defined before ``L`` and used on some path from ``L``.  These are exactly
the values the paper transfers to the continuation function.

Implemented as the textbook backward dataflow over basic blocks with LLVM
phi semantics: a phi's incoming value is treated as used at the *end of the
matching predecessor*, and phi results are defined at block entry.
"""

from __future__ import annotations

from typing import Dict, List, Set, Union

from ..ir.function import BasicBlock, Function
from ..ir.instructions import Instruction, PhiInst
from ..ir.values import Argument, Value
from .cfg import post_order

#: the value kinds that participate in liveness (constants/globals are
#: always materializable and never "live" in the OSR sense)
TrackedValue = Union[Argument, Instruction]


def _is_tracked(value: Value) -> bool:
    return isinstance(value, (Argument, Instruction))


class LivenessInfo:
    """Per-block live-in/live-out sets, with per-point queries."""

    def __init__(self, func: Function):
        self.function = func
        self.live_in: Dict[BasicBlock, Set[TrackedValue]] = {}
        self.live_out: Dict[BasicBlock, Set[TrackedValue]] = {}
        self._compute()

    def _compute(self) -> None:
        func = self.function
        blocks = func.blocks
        # use/def per block, with phi special-casing
        use: Dict[BasicBlock, Set[TrackedValue]] = {}
        defs: Dict[BasicBlock, Set[TrackedValue]] = {}
        # phi uses attributed to predecessor ends: pred -> set of values
        phi_uses: Dict[BasicBlock, Set[TrackedValue]] = {b: set() for b in blocks}

        for block in blocks:
            u: Set[TrackedValue] = set()
            d: Set[TrackedValue] = set()
            for inst in block.instructions:
                if isinstance(inst, PhiInst):
                    for value, pred in inst.incoming:
                        if _is_tracked(value) and pred in phi_uses:
                            phi_uses[pred].add(value)
                else:
                    for op in inst.operands:
                        if _is_tracked(op) and op not in d:
                            u.add(op)
                if not inst.type.is_void:
                    d.add(inst)
            use[block] = u
            defs[block] = d

        live_in: Dict[BasicBlock, Set[TrackedValue]] = {b: set() for b in blocks}
        live_out: Dict[BasicBlock, Set[TrackedValue]] = {b: set() for b in blocks}

        # iterate in postorder (good order for backward problems)
        order = post_order(func)
        order_set = set(order)
        worklist = list(order)
        in_worklist = set(order)
        while worklist:
            block = worklist.pop(0)
            in_worklist.discard(block)
            out: Set[TrackedValue] = set(phi_uses[block])
            for succ in block.successors():
                if succ not in order_set:
                    continue
                # successor live-in minus its phi defs (phi defs happen at
                # the successor's entry), since phi inputs were already
                # attributed to this block via phi_uses
                succ_phi_defs = {p for p in succ.phis}
                out |= live_in[succ] - succ_phi_defs
            new_in = use[block] | (out - defs[block])
            # phi results are defined at entry, so they are in live_in
            # only if live; they are not uses
            if out != live_out[block] or new_in != live_in[block]:
                live_out[block] = out
                live_in[block] = new_in
                for pred in block.predecessors():
                    if pred in order_set and pred not in in_worklist:
                        worklist.append(pred)
                        in_worklist.add(pred)

        self.live_in = live_in
        self.live_out = live_out

    # -- per-point queries -----------------------------------------------------

    def live_before(self, inst: Instruction) -> List[TrackedValue]:
        """Values live immediately before ``inst``, in deterministic order.

        Deterministic ordering matters: the continuation function's
        parameter list is built from this sequence, and it must match
        between instrumentation and continuation generation.
        """
        block = inst.parent
        if block is None:
            raise ValueError("instruction is not in a block")
        live: Set[TrackedValue] = set(self.live_out[block])
        instructions = block.instructions
        index = instructions.index(inst)
        for later in reversed(instructions[index:]):
            if isinstance(later, PhiInst):
                continue  # phi inputs belong to predecessors
            if not later.type.is_void:
                live.discard(later)
            for op in later.operands:
                if _is_tracked(op):
                    live.add(op)
        # phis of this block located *before* the program point are defs
        # that may be live (they are included via live_out/uses above).
        return self._sorted(live, block)

    def live_at_block_entry(self, block: BasicBlock) -> List[TrackedValue]:
        """Values live at block entry, *including* the block's own phi
        results (which are defined "at" entry and thus available there)."""
        live = set(self.live_in[block])
        for phi in block.phis:
            if phi in self.live_in[block] or self._phi_used(phi):
                live.add(phi)
        return self._sorted(live, block)

    def _phi_used(self, phi: PhiInst) -> bool:
        return phi.is_used()

    def _sorted(self, live: Set[TrackedValue], block: BasicBlock
                ) -> List[TrackedValue]:
        """Stable order: function arguments first (by index), then
        instructions in function layout order."""
        func = self.function
        positions: Dict[int, int] = {}
        counter = 0
        for b in func.blocks:
            for inst in b.instructions:
                positions[id(inst)] = counter
                counter += 1

        def key(value: TrackedValue):
            if isinstance(value, Argument):
                return (0, value.index)
            return (1, positions.get(id(value), 1 << 30))

        return sorted(live, key=key)


def live_values_at(inst: Instruction) -> List[TrackedValue]:
    """Convenience wrapper: live values immediately before ``inst``."""
    func = inst.function
    if func is None:
        raise ValueError("instruction is not inside a function")
    return LivenessInfo(func).live_before(inst)
