"""Escape analysis over stack allocations.

An alloca *escapes* when its address (or any pointer derived from it via
``getelementptr`` or a pointer-preserving cast) leaves the function's
direct load/store discipline: it is passed to a call, stored *as a
value* into memory, returned, captured by a ``guard``, converted to an
integer, or merged through a phi/select — any route by which code the
analysis cannot see might read or write the allocation.  A non-escaping
alloca is private to the function body: every access is a load or store
through a locally visible pointer, so passes may reason about its memory
as if it were a bundle of local variables.

Two consumers drive the lattice's shape:

* :mod:`repro.transform.scalarize` splits non-escaping *aggregate*
  allocas along their constant GEP access paths into scalar allocas
  that mem2reg can promote — this is what shrinks OSR live sets and
  frame slots (see ``docs/scalarization.md``);
* :mod:`repro.transform.dce` erases stores into non-escaping allocas
  that are never loaded (today an alloca is only erasable when fully
  unused).

The lattice is deliberately two-point (escapes / does not escape) with
a side bit for "was ever loaded"; anything surprising — an unknown user,
a pointer operand in a non-pointer position — collapses to *escapes*,
the conservative top.  Like every analysis, construct this only through
the :class:`~repro.analysis.manager.AnalysisManager` (``escape_info``)
so results are cached per code version and invalidated honestly.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst,
    CastInst,
    GEPInst,
    Instruction,
    LoadInst,
    StoreInst,
)
from ..ir.values import Value

#: pointer-preserving cast opcodes: the result still addresses the same
#: allocation, so the walk continues through them
_POINTER_CASTS = frozenset({"bitcast"})


class AllocaSummary:
    """What the function does with one alloca's memory."""

    __slots__ = ("alloca", "escapes", "loaded", "stored", "reason")

    def __init__(self, alloca: AllocaInst):
        self.alloca = alloca
        #: address may leave the load/store discipline
        self.escapes = False
        #: some load reads through the alloca (directly or derived)
        self.loaded = False
        #: some store writes through the alloca
        self.stored = False
        #: human-readable escape route (diagnostics/tests), or None
        self.reason: Optional[str] = None

    def _escape(self, reason: str) -> None:
        if not self.escapes:
            self.escapes = True
            self.reason = reason

    def __repr__(self) -> str:  # pragma: no cover
        state = "escapes" if self.escapes else "captured"
        return f"<AllocaSummary %{self.alloca.name} {state}>"


class EscapeInfo:
    """Per-function escape facts for every alloca, at any position.

    Build via ``am.escape_info(func)``; the result is cached per
    ``(function, code_version)`` like every managed analysis.
    """

    def __init__(self, func: Function):
        self.function = func
        #: id(alloca) -> summary (ids are stable while the summary holds
        #: the alloca alive)
        self._summaries: Dict[int, AllocaSummary] = {}
        for block in func.blocks:
            for inst in block.instructions:
                if isinstance(inst, AllocaInst):
                    summary = AllocaSummary(inst)
                    self._walk(inst, summary)
                    self._summaries[id(inst)] = summary

    # -- the walk ---------------------------------------------------------------

    def _walk(self, pointer: Value, summary: AllocaSummary) -> None:
        """Follow every use of a pointer rooted at the alloca; derived
        pointers (GEPs, pointer casts) recurse.  Cycles are impossible:
        derived pointers form a DAG rooted at the alloca."""
        for use in pointer.uses:
            user = use.user
            if isinstance(user, LoadInst):
                summary.loaded = True
            elif isinstance(user, StoreInst):
                if user.value is pointer:
                    # the address itself is written into memory: anyone
                    # who loads it back can alias the allocation
                    summary._escape("address stored as a value")
                else:
                    summary.stored = True
            elif isinstance(user, GEPInst):
                if user.pointer is pointer:
                    self._walk(user, summary)
                else:
                    # a pointer in an index position is malformed enough
                    # to give up on
                    summary._escape("pointer used as a gep index")
            elif isinstance(user, CastInst):
                if user.opcode in _POINTER_CASTS and user.type.is_pointer:
                    self._walk(user, summary)
                else:
                    # ptrtoint and friends launder the address into a
                    # domain the analysis cannot follow
                    summary._escape(f"{user.opcode} cast")
            else:
                # calls (the callee may stash or mutate), returns (the
                # caller sees the address), guards (the deopt machinery
                # transfers it), phis/selects (flow-merging would need a
                # fixpoint — collapse to top), and anything future
                summary._escape(
                    f"used by {type(user).__name__.lower()}"
                )
            if summary.escapes:
                return

    # -- queries ----------------------------------------------------------------

    def summary(self, alloca: AllocaInst) -> Optional[AllocaSummary]:
        return self._summaries.get(id(alloca))

    def escapes(self, alloca: AllocaInst) -> bool:
        """True when the alloca's address may leave the function's direct
        load/store discipline (unknown allocas count as escaping)."""
        summary = self._summaries.get(id(alloca))
        return summary.escapes if summary is not None else True

    def is_loaded(self, alloca: AllocaInst) -> bool:
        """True when any load reads through the alloca (unknown allocas
        conservatively count as loaded)."""
        summary = self._summaries.get(id(alloca))
        return summary.loaded if summary is not None else True

    @property
    def non_escaping(self) -> List[AllocaInst]:
        """Allocas proven private to the function, in program order."""
        return [s.alloca for s in self._summaries.values() if not s.escapes]

    @property
    def allocas(self) -> List[AllocaInst]:
        return [s.alloca for s in self._summaries.values()]

    def __repr__(self) -> str:  # pragma: no cover
        total = len(self._summaries)
        private = len(self.non_escaping)
        return (f"<EscapeInfo @{self.function.name} "
                f"{private}/{total} non-escaping>")


def _same_escape(a: EscapeInfo, b: EscapeInfo) -> bool:
    """Result comparator for the preservation-honesty property test."""
    def key(info: EscapeInfo):
        return {
            id(s.alloca): (s.escapes, s.loaded, s.stored)
            for s in info._summaries.values()
        }

    return key(a) == key(b)
