"""repro.analysis — IR analyses (CFG, dominators, liveness, loops).

These are the LLVM analyses the OSR machinery consumes: liveness drives
the live-variable transfer at OSR points, dominators back the verifier and
mem2reg, and loop info drives hottest-loop OSR point placement.
"""

from .callgraph import CallGraph
from .cfg import (
    depth_first_order,
    post_order,
    predecessor_map,
    reachable_blocks,
    remove_unreachable_blocks,
    reverse_post_order,
    split_edge,
)
from .dominators import DominatorTree
from .escape import AllocaSummary, EscapeInfo
from .liveness import LivenessInfo, live_values_at
from .loops import Loop, LoopInfo
from .manager import (
    ANALYSES,
    AnalysisManager,
    PreservedAnalyses,
    analysis_stamp,
    default_manager,
    resolve_manager,
)
from .usedef import (
    instruction_users,
    is_trivially_dead,
    transitive_users,
    used_outside_block,
    users_in_block,
)

__all__ = [
    "ANALYSES",
    "AnalysisManager",
    "PreservedAnalyses",
    "analysis_stamp",
    "default_manager",
    "resolve_manager",
    "AllocaSummary",
    "CallGraph",
    "DominatorTree",
    "EscapeInfo",
    "LivenessInfo",
    "live_values_at",
    "Loop",
    "LoopInfo",
    "depth_first_order",
    "post_order",
    "predecessor_map",
    "reachable_blocks",
    "remove_unreachable_blocks",
    "reverse_post_order",
    "split_edge",
    "instruction_users",
    "is_trivially_dead",
    "transitive_users",
    "used_outside_block",
    "users_in_block",
]
