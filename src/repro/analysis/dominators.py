"""Dominator tree and dominance frontiers.

Implements the Cooper-Harvey-Kennedy "A Simple, Fast Dominance Algorithm":
iterative IDom computation over reverse postorder, plus the standard
dominance-frontier construction used by mem2reg's phi placement.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.function import BasicBlock, Function
from .cfg import post_order, predecessor_map


class DominatorTree:
    """Immediate-dominator tree for the reachable CFG of a function."""

    def __init__(self, func: Function):
        self.function = func
        #: immediate dominator of each reachable block (entry maps to itself)
        self.idom: Dict[BasicBlock, BasicBlock] = {}
        #: children in the dominator tree
        self.children: Dict[BasicBlock, List[BasicBlock]] = {}
        #: postorder index of each reachable block
        self._po_index: Dict[BasicBlock, int] = {}
        self._compute()

    def _compute(self) -> None:
        func = self.function
        order = post_order(func)
        self._po_index = {b: i for i, b in enumerate(order)}
        rpo = list(reversed(order))
        preds = predecessor_map(func)
        entry = func.entry

        idom: Dict[BasicBlock, Optional[BasicBlock]] = {b: None for b in rpo}
        idom[entry] = entry
        changed = True
        while changed:
            changed = False
            for block in rpo:
                if block is entry:
                    continue
                new_idom: Optional[BasicBlock] = None
                for pred in preds[block]:
                    if pred not in self._po_index:
                        continue  # unreachable predecessor
                    if idom[pred] is None:
                        continue
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = self._intersect(idom, new_idom, pred)
                if new_idom is not None and idom[block] is not new_idom:
                    idom[block] = new_idom
                    changed = True

        self.idom = {b: d for b, d in idom.items() if d is not None}
        self.children = {b: [] for b in self.idom}
        for block, dom in self.idom.items():
            if block is not dom:
                self.children[dom].append(block)

    def _intersect(
        self,
        idom: Dict[BasicBlock, Optional[BasicBlock]],
        a: BasicBlock,
        b: BasicBlock,
    ) -> BasicBlock:
        index = self._po_index
        while a is not b:
            while index[a] < index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] < index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    # -- queries ----------------------------------------------------------------

    def is_reachable(self, block: BasicBlock) -> bool:
        return block in self.idom

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """Does ``a`` dominate ``b``?  (Reflexive: a block dominates itself.)"""
        if a not in self.idom or b not in self.idom:
            return False
        entry = self.function.entry
        node = b
        while True:
            if node is a:
                return True
            if node is entry:
                return False
            node = self.idom[node]

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def immediate_dominator(self, block: BasicBlock) -> Optional[BasicBlock]:
        if block is self.function.entry:
            return None
        return self.idom.get(block)

    def dominance_frontier(self) -> Dict[BasicBlock, Set[BasicBlock]]:
        """DF(b) per Cooper-Harvey-Kennedy: for each join point, walk each
        predecessor's dominator chain up to the join's idom."""
        func = self.function
        preds = predecessor_map(func)
        frontier: Dict[BasicBlock, Set[BasicBlock]] = {
            b: set() for b in self.idom
        }
        for block in self.idom:
            block_preds = [p for p in preds[block] if p in self.idom]
            if len(block_preds) < 2:
                continue
            for pred in block_preds:
                runner = pred
                while runner is not self.idom[block]:
                    frontier[runner].add(block)
                    runner = self.idom[runner]
        return frontier
