"""Call graph construction.

Direct calls contribute precise edges; indirect calls are recorded as such
(the VM's profiler resolves them dynamically, which is how the open-OSR
feval optimizer learns actual targets).
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir.function import Function, Module
from ..ir.instructions import CallInst, IndirectCallInst


class CallGraph:
    """Static call graph over a module."""

    def __init__(self, module: Module):
        self.module = module
        self.callees: Dict[Function, List[Function]] = {}
        self.callers: Dict[Function, List[Function]] = {}
        self.has_indirect_calls: Dict[Function, bool] = {}
        self._compute()

    def _compute(self) -> None:
        funcs = self.module.functions
        self.callees = {f: [] for f in funcs}
        self.callers = {f: [] for f in funcs}
        self.has_indirect_calls = {f: False for f in funcs}
        for func in funcs:
            if func.is_declaration:
                continue
            for inst in func.instructions():
                if isinstance(inst, CallInst) and isinstance(inst.callee, Function):
                    target = inst.callee
                    if target not in self.callees[func]:
                        self.callees[func].append(target)
                    if target in self.callers and func not in self.callers[target]:
                        self.callers[target].append(func)
                elif isinstance(inst, IndirectCallInst):
                    self.has_indirect_calls[func] = True

    def is_recursive(self, func: Function) -> bool:
        """Does ``func`` (transitively) call itself?"""
        seen: Set[Function] = set()
        stack = list(self.callees.get(func, []))
        while stack:
            node = stack.pop()
            if node is func:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.callees.get(node, []))
        return False

    def post_order(self) -> List[Function]:
        """Bottom-up order (callees before callers); cycles broken at
        first visit.  Used by the inliner."""
        seen: Set[Function] = set()
        order: List[Function] = []

        def visit(func: Function) -> None:
            if func in seen:
                return
            seen.add(func)
            for callee in self.callees.get(func, []):
                visit(callee)
            order.append(func)

        for func in self.module.functions:
            visit(func)
        return order
