"""Def-use helpers layered over the operand tracking in :mod:`repro.ir`.

The IR keeps bidirectional use lists; this module adds the queries passes
phrase their work in: "all instructions using X inside block B",
"is X used outside block B", "transitive users", etc.
"""

from __future__ import annotations

from typing import Iterator, List, Set

from ..ir.function import BasicBlock, Function
from ..ir.instructions import Instruction
from ..ir.values import Value


def instruction_users(value: Value) -> List[Instruction]:
    """Distinct instructions that use ``value``."""
    return [u for u in value.users if isinstance(u, Instruction)]


def users_in_block(value: Value, block: BasicBlock) -> List[Instruction]:
    return [u for u in instruction_users(value) if u.parent is block]


def used_outside_block(value: Value, block: BasicBlock) -> bool:
    return any(u.parent is not block for u in instruction_users(value))


def transitive_users(value: Value) -> Set[Instruction]:
    """All instructions reachable by following use edges from ``value``."""
    seen: Set[Instruction] = set()
    frontier: List[Value] = [value]
    while frontier:
        node = frontier.pop()
        for user in node.users:
            if isinstance(user, Instruction) and user not in seen:
                seen.add(user)
                if not user.type.is_void:
                    frontier.append(user)
    return seen


def defs_in_function(func: Function) -> Iterator[Instruction]:
    """All value-producing instructions of a function."""
    for inst in func.instructions():
        if not inst.type.is_void:
            yield inst


def is_trivially_dead(inst: Instruction) -> bool:
    """Dead if it produces an unused value and has no side effects."""
    if inst.has_side_effects():
        return False
    if inst.type.is_void:
        return False
    return not inst.is_used()
