"""Harness for compiling and running shootout benchmarks.

Centralizes the compile-and-run flow the experiments share: compile a
benchmark's mini-C source, apply one of the paper's two pipeline tiers
(*unoptimized* = mem2reg only, *optimized* = -O1-like), build an engine
and execute the workload.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

from ..frontend import compile_c
from ..ir.function import Function, Module
from ..transform import PassManager
from ..vm import ExecutionEngine
from .programs import SUITE, Benchmark


def compile_benchmark(benchmark: Benchmark, level: str = "unoptimized"
                      ) -> Module:
    """Compile a benchmark to a fresh module at the given pipeline tier.

    ``level`` is ``"unoptimized"`` (mem2reg only — the paper's baseline
    configuration), ``"optimized"`` (-O1-like), or ``"none"`` (raw -O0
    alloca code, useful for inspecting frontend output).
    """
    module = compile_c(benchmark.source, module_name=benchmark.name)
    if level != "none":
        PassManager.pipeline(level).run_module(module)
    return module


def run_benchmark(
    benchmark: Benchmark,
    level: str = "unoptimized",
    tier: str = "jit",
    large: bool = False,
    module: Optional[Module] = None,
) -> Tuple[object, float]:
    """Compile (unless ``module`` is supplied) and run one benchmark.

    Returns ``(checksum, seconds)``.
    """
    if module is None:
        module = compile_benchmark(benchmark, level)
    engine = ExecutionEngine(module, tier=tier)
    args = benchmark.large_args if large else benchmark.args
    if args is None:
        raise ValueError(f"{benchmark.name} has no large workload")
    # warm-up: force compilation outside the timed region (the paper times
    # steady-state CPU time after a warm-up iteration)
    engine.get_compiled(module.get_function(benchmark.entry))
    start = time.perf_counter()
    result = engine.run(benchmark.entry, *args)
    elapsed = time.perf_counter() - start
    return result, elapsed


def workloads(benchmark: Benchmark):
    """Yield ``(label, args)`` for the benchmark's configured workloads."""
    yield benchmark.name, benchmark.args
    if benchmark.large_args is not None:
        yield f"{benchmark.name}-large", benchmark.large_args


def verify_benchmark(benchmark: Benchmark, level: str = "unoptimized",
                     tier: str = "jit") -> None:
    """Assert the benchmark reproduces its recorded checksums."""
    module = compile_benchmark(benchmark, level)
    engine = ExecutionEngine(module, tier=tier)
    for args, expected in benchmark.expected.items():
        result = engine.run(benchmark.entry, *args)
        if isinstance(expected, float):
            if abs(result - expected) > 1e-6 * max(1.0, abs(expected)):
                raise AssertionError(
                    f"{benchmark.name}{args}: got {result}, "
                    f"expected {expected}"
                )
        elif result != expected:
            raise AssertionError(
                f"{benchmark.name}{args}: got {result}, expected {expected}"
            )


def all_benchmarks():
    """The suite in Table 1 order."""
    return [SUITE[name] for name in (
        "b-trees", "fannkuch", "fasta", "fasta-redux",
        "mbrot", "n-body", "rev-comp", "sp-norm",
    )]
