"""The shootout benchmark suite (paper Table 1), in mini-C.

Eight programs from the Computer Language Benchmarks Game, restructured
the way the paper uses them: single-threaded, no external libraries, and
producing a checksum return value instead of writing to stdout (our VM is
a simulator; checksums make correctness machine-checkable).  Four of them
carry a ``large`` workload like the paper's ``*-large`` variants.

Workload sizes are scaled to the Python-JIT substrate (the paper's
absolute iteration counts would take hours under simulation); the *loop
structure* — which is what OSR point placement and the Q1-Q3 overhead
questions exercise — is preserved.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Tuple


class Benchmark(NamedTuple):
    name: str                    #: paper's benchmark name
    description: str             #: Table 1 description
    source: str                  #: mini-C source
    entry: str                   #: entry function
    args: Tuple[int, ...]        #: standard workload
    large_args: Optional[Tuple[int, ...]]  #: the paper's -large variant
    expected: Dict[Tuple[int, ...], object]  #: workload -> checksum
    q1_functions: Tuple[str, ...]  #: hottest-loop OSR sites (Q1/Q3)
    q2_function: str             #: per-iteration method instrumented in Q2
    pattern: str                 #: 'iterative' | 'recursive'


# ---------------------------------------------------------------------------
# b-trees — adaptation of a GC bench for binary trees (recursive pattern)
# ---------------------------------------------------------------------------

B_TREES = r"""
long check_tree(long **node) {
    if (node[0] == 0) return 1;
    return 1 + check_tree((long **)node[0]) + check_tree((long **)node[1]);
}

long **make_tree(long depth) {
    long **node = (long **)malloc(16);
    if (depth > 0) {
        node[0] = (long *)make_tree(depth - 1);
        node[1] = (long *)make_tree(depth - 1);
    } else {
        node[0] = 0;
        node[1] = 0;
    }
    return node;
}

void free_tree(long **node) {
    if (node[0] != 0) {
        free_tree((long **)node[0]);
        free_tree((long **)node[1]);
    }
    free((char *)node);
}

long btrees(long max_depth) {
    long min_depth = 4;
    long total = 0;
    long **stretch = make_tree(max_depth + 1);
    total += check_tree(stretch);
    free_tree(stretch);
    long **long_lived = make_tree(max_depth);
    for (long depth = min_depth; depth <= max_depth; depth += 2) {
        long iterations = 1 << (max_depth - depth + min_depth);
        for (long i = 0; i < iterations; i++) {
            long **t = make_tree(depth);
            total += check_tree(t);
            free_tree(t);
        }
    }
    total += check_tree(long_lived);
    free_tree(long_lived);
    return total;
}
"""

# ---------------------------------------------------------------------------
# fannkuch — flips of permutations
# ---------------------------------------------------------------------------

FANNKUCH = r"""
long fannkuch_flips(long *perm, long *perm1, long n) {
    for (long i = 0; i < n; i++) perm[i] = perm1[i];
    long flips = 0;
    long k = perm[0];
    while (k != 0) {
        long lo = 0;
        long hi = k;
        while (lo < hi) {
            long tmp = perm[lo];
            perm[lo] = perm[hi];
            perm[hi] = tmp;
            lo++;
            hi--;
        }
        flips++;
        k = perm[0];
    }
    return flips;
}

long fannkuch(long n) {
    long perm[16];
    long perm1[16];
    long count[16];
    long max_flips = 0;
    long checksum = 0;
    long perm_count = 0;
    long i;
    for (i = 0; i < n; i++) perm1[i] = i;
    long r = n;
    while (1) {
        while (r != 1) { count[r - 1] = r; r--; }
        long flips = fannkuch_flips(perm, perm1, n);
        if (flips > max_flips) max_flips = flips;
        if (perm_count % 2 == 0) checksum += flips;
        else checksum -= flips;
        while (1) {
            if (r == n) {
                return checksum * 1000 + max_flips;
            }
            long first = perm1[0];
            for (i = 0; i < r; i++) perm1[i] = perm1[i + 1];
            perm1[r] = first;
            count[r] = count[r] - 1;
            if (count[r] > 0) break;
            r++;
        }
        perm_count++;
    }
    return 0;
}
"""

# ---------------------------------------------------------------------------
# fasta — weighted random DNA sequence generation
# ---------------------------------------------------------------------------

FASTA = r"""
long fasta_seed = 42;

long fasta_pick(long *cum, long *codes, long pick) {
    long j = 0;
    while (cum[j] <= pick) j++;
    return codes[j];
}

long fasta(long n) {
    /* cumulative probabilities scaled by 139968 (the LCG modulus) */
    long cum[15];
    long codes[15];
    cum[0] = 38190; codes[0] = 'a';
    cum[1] = 54734; codes[1] = 'c';
    cum[2] = 70226; codes[2] = 'g';
    cum[3] = 108418; codes[3] = 't';
    cum[4] = 111218; codes[4] = 'B';
    cum[5] = 114018; codes[5] = 'D';
    cum[6] = 116818; codes[6] = 'H';
    cum[7] = 119618; codes[7] = 'K';
    cum[8] = 122418; codes[8] = 'M';
    cum[9] = 125218; codes[9] = 'N';
    cum[10] = 128018; codes[10] = 'R';
    cum[11] = 130818; codes[11] = 'S';
    cum[12] = 133618; codes[12] = 'V';
    cum[13] = 136418; codes[13] = 'W';
    cum[14] = 139968; codes[14] = 'Y';
    long checksum = 0;
    for (long i = 0; i < n; i++) {
        fasta_seed = (fasta_seed * 3877 + 29573) % 139968;
        long code = fasta_pick(cum, codes, fasta_seed);
        checksum = (checksum * 31 + code) % 1000000007;
    }
    return checksum;
}
"""

# ---------------------------------------------------------------------------
# fasta-redux — same generation through a precomputed lookup table
# ---------------------------------------------------------------------------

FASTA_REDUX = r"""
long fasta_redux_seed = 42;

long fasta_redux_pick(long *cum, long *codes, long *lookup, long pick) {
    long k = lookup[pick * 4096 / 139968];
    while (cum[k] <= pick) k++;
    return codes[k];
}

long fasta_redux(long n) {
    long cum[15];
    long codes[15];
    cum[0] = 38190; codes[0] = 'a';
    cum[1] = 54734; codes[1] = 'c';
    cum[2] = 70226; codes[2] = 'g';
    cum[3] = 108418; codes[3] = 't';
    cum[4] = 111218; codes[4] = 'B';
    cum[5] = 114018; codes[5] = 'D';
    cum[6] = 116818; codes[6] = 'H';
    cum[7] = 119618; codes[7] = 'K';
    cum[8] = 122418; codes[8] = 'M';
    cum[9] = 125218; codes[9] = 'N';
    cum[10] = 128018; codes[10] = 'R';
    cum[11] = 130818; codes[11] = 'S';
    cum[12] = 133618; codes[12] = 'V';
    cum[13] = 136418; codes[13] = 'W';
    cum[14] = 139968; codes[14] = 'Y';
    /* lookup table: 4096 buckets over the LCG range */
    long lookup[4096];
    long j = 0;
    for (long b = 0; b < 4096; b++) {
        long threshold = (b + 1) * 139968 / 4096;
        while (cum[j] < threshold && j < 14) j++;
        lookup[b] = j;
    }
    long checksum = 0;
    for (long i = 0; i < n; i++) {
        fasta_redux_seed = (fasta_redux_seed * 3877 + 29573) % 139968;
        long code = fasta_redux_pick(cum, codes, lookup, fasta_redux_seed);
        checksum = (checksum * 31 + code) % 1000000007;
    }
    return checksum;
}
"""

# ---------------------------------------------------------------------------
# mbrot — Mandelbrot set generation
# ---------------------------------------------------------------------------

MBROT = r"""
long mbrot_pixel(double cr, double ci) {
    double zr = 0.0;
    double zi = 0.0;
    long i = 0;
    long escaped = 0;
    while (i < 50 && !escaped) {
        double new_zr = zr * zr - zi * zi + cr;
        zi = 2.0 * zr * zi + ci;
        zr = new_zr;
        if (zr * zr + zi * zi > 4.0) escaped = 1;
        i++;
    }
    if (escaped) return 0;
    return 1;
}

long mbrot(long size) {
    long bits = 0;
    for (long y = 0; y < size; y++) {
        for (long x = 0; x < size; x++) {
            double cr = 2.0 * (double)x / (double)size - 1.5;
            double ci = 2.0 * (double)y / (double)size - 1.0;
            bits += mbrot_pixel(cr, ci);
        }
    }
    return bits;
}
"""

# ---------------------------------------------------------------------------
# n-body — N-body simulation of Jovian planets
# ---------------------------------------------------------------------------

N_BODY = r"""
double nbody_energy(double *x, double *y, double *z,
                    double *vx, double *vy, double *vz, double *m) {
    double e = 0.0;
    for (long i = 0; i < 5; i++) {
        e += 0.5 * m[i] * (vx[i]*vx[i] + vy[i]*vy[i] + vz[i]*vz[i]);
        for (long j = i + 1; j < 5; j++) {
            double dx = x[i] - x[j];
            double dy = y[i] - y[j];
            double dz = z[i] - z[j];
            e -= m[i] * m[j] / sqrt(dx*dx + dy*dy + dz*dz);
        }
    }
    return e;
}

void nbody_advance(double *x, double *y, double *z,
                   double *vx, double *vy, double *vz, double *m,
                   double dt) {
    for (long i = 0; i < 5; i++) {
        for (long j = i + 1; j < 5; j++) {
            double dx = x[i] - x[j];
            double dy = y[i] - y[j];
            double dz = z[i] - z[j];
            double d2 = dx*dx + dy*dy + dz*dz;
            double mag = dt / (d2 * sqrt(d2));
            vx[i] -= dx * m[j] * mag;
            vy[i] -= dy * m[j] * mag;
            vz[i] -= dz * m[j] * mag;
            vx[j] += dx * m[i] * mag;
            vy[j] += dy * m[i] * mag;
            vz[j] += dz * m[i] * mag;
        }
    }
    for (long i = 0; i < 5; i++) {
        x[i] += dt * vx[i];
        y[i] += dt * vy[i];
        z[i] += dt * vz[i];
    }
}

double nbody(long steps) {
    double x[5]; double y[5]; double z[5];
    double vx[5]; double vy[5]; double vz[5];
    double m[5];
    double pi = 3.141592653589793;
    double solar_mass = 4.0 * pi * pi;
    double days = 365.24;
    /* sun */
    x[0]=0.0; y[0]=0.0; z[0]=0.0; vx[0]=0.0; vy[0]=0.0; vz[0]=0.0;
    m[0]=solar_mass;
    /* jupiter */
    x[1]=4.84143144246472090; y[1]=-1.16032004402742839;
    z[1]=-0.103622044471123109;
    vx[1]=0.00166007664274403694*days; vy[1]=0.00769901118419740425*days;
    vz[1]=-0.0000690460016972063023*days;
    m[1]=0.000954791938424326609*solar_mass;
    /* saturn */
    x[2]=8.34336671824457987; y[2]=4.12479856412430479;
    z[2]=-0.403523417114321381;
    vx[2]=-0.00276742510726862411*days; vy[2]=0.00499852801234917238*days;
    vz[2]=0.0000230417297573763929*days;
    m[2]=0.000285885980666130812*solar_mass;
    /* uranus */
    x[3]=12.8943695621391310; y[3]=-15.1111514016986312;
    z[3]=-0.223307578892655734;
    vx[3]=0.00296460137564761618*days; vy[3]=0.00237847173959480950*days;
    vz[3]=-0.0000296589568540237556*days;
    m[3]=0.0000436624404335156298*solar_mass;
    /* neptune */
    x[4]=15.3796971148509165; y[4]=-25.9193146099879641;
    z[4]=0.179258772950371181;
    vx[4]=0.00268067772490389322*days; vy[4]=0.00162824170038242295*days;
    vz[4]=-0.0000951592254519715870*days;
    m[4]=0.0000515138902046611451*solar_mass;
    /* offset sun momentum */
    double px = 0.0; double py = 0.0; double pz = 0.0;
    for (long i = 0; i < 5; i++) {
        px += vx[i] * m[i]; py += vy[i] * m[i]; pz += vz[i] * m[i];
    }
    vx[0] = -px / solar_mass; vy[0] = -py / solar_mass; vz[0] = -pz / solar_mass;
    double e0 = nbody_energy(x, y, z, vx, vy, vz, m);
    for (long s = 0; s < steps; s++) {
        nbody_advance(x, y, z, vx, vy, vz, m, 0.01);
    }
    double e1 = nbody_energy(x, y, z, vx, vy, vz, m);
    return e0 * 1000000.0 + e1;
}
"""

# ---------------------------------------------------------------------------
# rev-comp — reverse complement of DNA sequences
# ---------------------------------------------------------------------------

REV_COMP = r"""
long revcomp_seed = 12345;

char complement(char *table, char c) {
    return table[c];
}

long revcomp(long n) {
    char table[128];
    for (long t = 0; t < 128; t++) table[t] = 'N';
    table['A'] = 'T'; table['T'] = 'A';
    table['C'] = 'G'; table['G'] = 'C';
    table['a'] = 'T'; table['t'] = 'A';
    table['c'] = 'G'; table['g'] = 'C';
    table['U'] = 'A'; table['u'] = 'A';
    char bases[4];
    bases[0] = 'A'; bases[1] = 'C'; bases[2] = 'G'; bases[3] = 'T';
    char *seq = malloc(n);
    for (long i = 0; i < n; i++) {
        revcomp_seed = (revcomp_seed * 3877 + 29573) % 139968;
        seq[i] = bases[revcomp_seed % 4];
    }
    /* reverse-complement in place */
    long lo = 0;
    long hi = n - 1;
    while (lo < hi) {
        char c1 = complement(table, seq[lo]);
        char c2 = complement(table, seq[hi]);
        seq[lo] = c2;
        seq[hi] = c1;
        lo++;
        hi--;
    }
    if (lo == hi) seq[lo] = complement(table, seq[lo]);
    long checksum = 0;
    for (long i = 0; i < n; i++) {
        checksum = (checksum * 31 + seq[i]) % 1000000007;
    }
    free(seq);
    return checksum;
}
"""

# ---------------------------------------------------------------------------
# sp-norm — eigenvalue via the power method
# ---------------------------------------------------------------------------

SP_NORM = r"""
double spnorm_a(long i, long j) {
    return 1.0 / (double)((i + j) * (i + j + 1) / 2 + i + 1);
}

void spnorm_av(double *x, double *y, long n) {
    for (long i = 0; i < n; i++) {
        double sum = 0.0;
        for (long j = 0; j < n; j++) sum += spnorm_a(i, j) * x[j];
        y[i] = sum;
    }
}

void spnorm_atv(double *x, double *y, long n) {
    for (long i = 0; i < n; i++) {
        double sum = 0.0;
        for (long j = 0; j < n; j++) sum += spnorm_a(j, i) * x[j];
        y[i] = sum;
    }
}

void spnorm_atav(double *x, double *y, double *t, long n) {
    spnorm_av(x, t, n);
    spnorm_atv(t, y, n);
}

double spnorm(long n) {
    double *u = (double *)malloc(n * 8);
    double *v = (double *)malloc(n * 8);
    double *t = (double *)malloc(n * 8);
    for (long i = 0; i < n; i++) u[i] = 1.0;
    for (long i = 0; i < 10; i++) {
        spnorm_atav(u, v, t, n);
        spnorm_atav(v, u, t, n);
    }
    double vbv = 0.0;
    double vv = 0.0;
    for (long i = 0; i < n; i++) {
        vbv += u[i] * v[i];
        vv += v[i] * v[i];
    }
    free((char *)u);
    free((char *)v);
    free((char *)t);
    return sqrt(vbv / vv);
}
"""


#: the full suite, keyed by paper benchmark name.  Expected checksums were
#: captured from the reference interpreter and act as regression oracles.
SUITE: Dict[str, Benchmark] = {}


def _register(benchmark: Benchmark) -> None:
    SUITE[benchmark.name] = benchmark


_register(Benchmark(
    name="b-trees",
    description="Adaptation of a GC bench for binary trees",
    source=B_TREES, entry="btrees",
    args=(7,), large_args=(9,),
    expected={(7,): 8798, (9,): 51550},
    q1_functions=("check_tree",), q2_function="check_tree",
    pattern="recursive",
))
_register(Benchmark(
    name="fannkuch",
    description="Fannkuch benchmark on permutations",
    source=FANNKUCH, entry="fannkuch",
    args=(7,), large_args=None,
    expected={(7,): 228016},
    q1_functions=("fannkuch_flips",), q2_function="fannkuch_flips",
    pattern="iterative",
))
_register(Benchmark(
    name="fasta",
    description="Generation of DNA sequences",
    source=FASTA, entry="fasta",
    args=(30000,), large_args=None,
    expected={(30000,): 469192314},
    q1_functions=("fasta",), q2_function="fasta_pick",
    pattern="iterative",
))
_register(Benchmark(
    name="fasta-redux",
    description="Generation of DNA sequences (with lookup table)",
    source=FASTA_REDUX, entry="fasta_redux",
    args=(30000,), large_args=None,
    expected={(30000,): 137661319},
    q1_functions=("fasta_redux",), q2_function="fasta_redux_pick",
    pattern="iterative",
))
_register(Benchmark(
    name="mbrot",
    description="Mandelbrot set generation",
    source=MBROT, entry="mbrot",
    args=(40,), large_args=(64,),
    expected={(40,): 633, (64,): 1626},
    q1_functions=("mbrot_pixel",), q2_function="mbrot_pixel",
    pattern="iterative",
))
_register(Benchmark(
    name="n-body",
    description="N-body simulation of Jovian planets",
    source=N_BODY, entry="nbody",
    args=(1500,), large_args=(4000,),
    expected={(1500,): -169075.3328380587, (4000,): -169075.3328406311},
    q1_functions=("nbody_advance",), q2_function="nbody_advance",
    pattern="iterative",
))
_register(Benchmark(
    name="rev-comp",
    description="Reverse-complement of DNA sequences",
    source=REV_COMP, entry="revcomp",
    args=(30000,), large_args=None,
    expected={(30000,): 658884467},
    q1_functions=("revcomp",), q2_function="complement",
    pattern="iterative",
))
_register(Benchmark(
    name="sp-norm",
    description="Eigenvalue calculation with power method",
    source=SP_NORM, entry="spnorm",
    args=(28,), large_args=(56,),
    expected={(28,): 1.2740707688760662, (56,): 1.2742021739342595},
    q1_functions=("spnorm_av", "spnorm_atv"), q2_function="spnorm_a",
    pattern="iterative",
))
