"""repro.shootout — the shootout benchmark suite (paper Table 1)."""

from .harness import (
    all_benchmarks,
    compile_benchmark,
    run_benchmark,
    verify_benchmark,
    workloads,
)
from .programs import SUITE, Benchmark

__all__ = [
    "SUITE",
    "Benchmark",
    "all_benchmarks",
    "compile_benchmark",
    "run_benchmark",
    "verify_benchmark",
    "workloads",
]
