"""Persistent, content-addressed store of compiled-code artifacts.

:class:`DiskCodeCache` gives :class:`~repro.vm.jit.CompiledCode` the one
property it was still missing: surviving process death.  The in-memory
artifact cache (PR 1) already made compiled code engine-independent and
stamped by ``code_version``/``code_shape``; this layer marshals those
artifacts to disk so the *next* process warm-starts from a previous
run's compiles — the OCamlJIT 2.0 move of caching byte-code compilation
results across runs.

Keying
======

An entry's filename is the hex SHA-256 of::

    (key-schema tag, disk format version, interpreter bytecode magic,
     function name, printed IR body, code_version, code_shape)

The *printed IR body* is the deterministic textual form from
:func:`repro.ir.printer.print_function` — it is what makes the key a
*function identity hash* rather than a name: a fresh process that
parses the same source reproduces the same text (hit), while any body
rewrite (transform pass, OSR insertion) changes both the text and the
version stamp (miss, recompile, write-through).  Including the
interpreter's bytecode magic number means a Python upgrade simply
misses everything instead of loading foreign bytecode.

Invalidation is therefore purely key-based: stale entries are never
*deleted* on invalidation, they just stop being addressed; the embedded
stamps are still re-checked on load as a second line of defense (a key
collision or a hand-copied file cannot smuggle an old body in).

File format
===========

``b"RPRC" + format byte + 4-byte bytecode magic + 32-byte SHA-256 of
the payload + payload``, where the payload is
:func:`repro.vm.jit.serialize_artifact` bytes.  Writes go to a
temporary file in the same directory followed by :func:`os.replace`, so
readers only ever observe complete entries; any header/checksum/format
mismatch on read is counted, the entry is dropped best-effort, and the
caller recompiles.

Thread-safety: file operations are atomic at the OS level and the
counters are guarded by a lock, so one cache instance may be shared by
an engine, its background compile workers and a server's request
threads.
"""

from __future__ import annotations

import hashlib
import os
import struct
import threading
from importlib.util import MAGIC_NUMBER
from pathlib import Path
from typing import Any, Dict, Optional

from ..ir.function import Function, Module
from ..ir.printer import print_function
from ..vm.jit import (
    DISK_FORMAT_VERSION,
    ArtifactFormatError,
    CompiledCode,
    JITError,
    UnserializableArtifact,
    deserialize_artifact,
    serialize_artifact,
)

#: the conventional cache location (gitignored); engines accept a plain
#: path and construct the cache themselves
DEFAULT_CACHE_DIR = ".repro-cache"

_HEADER_MAGIC = b"RPRC"
_MAGIC4 = MAGIC_NUMBER[:4].ljust(4, b"\0")
_HEADER = struct.Struct("<4sB4s32s")
_KEY_SCHEMA = b"repro.serve.diskcache/key/1"


class DiskCodeCache:
    """Content-addressed on-disk artifact store (see module docstring)."""

    def __init__(self, path: Any = DEFAULT_CACHE_DIR,
                 readonly: bool = False):
        self.path = Path(path)
        self.readonly = readonly
        if not readonly:
            self.path.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._tmp_counter = 0
        #: lifetime counters: loads served / key absent / entry present
        #: but rejected (corrupt, format skew, stamp mismatch) / entries
        #: written / artifacts refused by the serialization audit / OS
        #: errors swallowed
        self.hits = 0
        self.misses = 0
        self.rejected = 0
        self.writes = 0
        self.unserializable = 0
        self.errors = 0

    # -- keying -------------------------------------------------------------------

    @staticmethod
    def identity_hash(func: Function) -> str:
        """Process-independent identity of a function *body*: the hex
        SHA-256 of its deterministic printed IR."""
        return hashlib.sha256(print_function(func).encode()).hexdigest()

    def key_for(self, func: Function) -> str:
        """The entry key for ``func`` at its current version stamps."""
        shape = func.code_shape()
        hasher = hashlib.sha256()
        hasher.update(_KEY_SCHEMA)
        hasher.update(struct.pack("<B", DISK_FORMAT_VERSION))
        hasher.update(_MAGIC4)
        hasher.update(func.name.encode())
        hasher.update(b"\0")
        hasher.update(print_function(func).encode())
        hasher.update(struct.pack("<qqq", func.code_version,
                                  shape[0], shape[1]))
        return hasher.hexdigest()

    def entry_path(self, key: str) -> Path:
        # two-level fan-out keeps directories small under many entries
        return self.path / key[:2] / f"{key[2:]}.rpc"

    # -- loading ------------------------------------------------------------------

    def load(self, func: Function, module: Module) -> Optional[CompiledCode]:
        """The stored artifact for ``func``'s current stamps, or None.

        Every failure mode — absent entry, corrupt bytes, format or
        interpreter-version skew, stamp mismatch, dangling name
        references — returns None so the caller falls back to a normal
        compile; nothing stored on disk can ever raise into the JIT
        path.  Bad entries are unlinked best-effort.
        """
        entry = self.entry_path(self.key_for(func))
        try:
            blob = entry.read_bytes()
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return None
        except OSError:
            with self._lock:
                self.misses += 1
                self.errors += 1
            return None
        artifact = self._decode(blob, func, module)
        if artifact is None:
            with self._lock:
                self.rejected += 1
                self.misses += 1
            self._drop(entry)
            return None
        with self._lock:
            self.hits += 1
        return artifact

    def _decode(self, blob: bytes, func: Function,
                module: Module) -> Optional[CompiledCode]:
        if len(blob) < _HEADER.size:
            return None
        magic, fmt, pymagic, digest = _HEADER.unpack_from(blob)
        payload = blob[_HEADER.size:]
        if (magic != _HEADER_MAGIC or fmt != DISK_FORMAT_VERSION
                or pymagic != _MAGIC4):
            return None
        if hashlib.sha256(payload).digest() != digest:
            return None
        try:
            artifact = deserialize_artifact(payload, module)
        except (ArtifactFormatError, JITError, KeyError):
            return None
        # second line of defense: the embedded stamps must equal the
        # live function's — a stale or transplanted entry is rejected
        # here even if it somehow landed under the right key
        if not artifact.matches(func):
            return None
        return artifact

    def _drop(self, entry: Path) -> None:
        if self.readonly:
            return
        try:
            entry.unlink()
        except OSError:
            with self._lock:
                self.errors += 1

    # -- storing ------------------------------------------------------------------

    def store(self, func: Function, artifact: CompiledCode) -> bool:
        """Write ``artifact`` through to disk; returns True on success.

        Unserializable artifacts (engine-session handles baked in) and
        readonly caches return False without raising; the artifact must
        match the function's current stamps (an in-flight invalidate
        makes the write moot, not wrong — the entry would simply never
        be addressed — but skipping it keeps the store tidy).
        """
        if self.readonly or not artifact.matches(func):
            return False
        try:
            payload = serialize_artifact(func, artifact)
        except UnserializableArtifact:
            with self._lock:
                self.unserializable += 1
            return False
        header = _HEADER.pack(_HEADER_MAGIC, DISK_FORMAT_VERSION, _MAGIC4,
                              hashlib.sha256(payload).digest())
        entry = self.entry_path(self.key_for(func))
        with self._lock:
            self._tmp_counter += 1
            tmp = entry.parent / f".tmp-{os.getpid()}-{self._tmp_counter}"
        try:
            entry.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(header + payload)
            os.replace(tmp, entry)
        except OSError:
            with self._lock:
                self.errors += 1
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        with self._lock:
            self.writes += 1
        return True

    # -- maintenance --------------------------------------------------------------

    def entry_count(self) -> int:
        """Number of entries currently on disk (walks the store)."""
        if not self.path.exists():
            return 0
        return sum(1 for _ in self.path.glob("*/*.rpc"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for entry in list(self.path.glob("*/*.rpc")):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                with self._lock:
                    self.errors += 1
        return removed

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "rejected": self.rejected,
                "writes": self.writes,
                "unserializable": self.unserializable,
                "errors": self.errors,
            }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<DiskCodeCache {str(self.path)!r} hits={self.hits} "
                f"misses={self.misses} writes={self.writes}>")
