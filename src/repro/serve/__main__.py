"""Command-line smoke for the serving subsystem.

``python -m repro.serve smoke --cache DIR`` builds a compile-bound
module, runs every function once on a ``jit``-tier engine attached to
the persistent cache at ``DIR``, and prints the cache counters.  Run it
twice against the same directory and the second process must be served
entirely from disk — which is exactly what CI does::

    python -m repro.serve smoke --cache /tmp/warm
    python -m repro.serve smoke --cache /tmp/warm --expect-hits

``--expect-hits`` makes a cold compile (any ``misses``) a non-zero
exit, so a regression in keying, serialization or the engine wiring
fails the pipeline instead of silently cooling every start.
"""

from __future__ import annotations

import argparse
import sys

from ..ir import parse_module
from ..vm import ExecutionEngine


def _chain_source(name: str, blocks: int) -> str:
    """A straight-line i64 function whose codegen cost grows with
    ``blocks`` — compile-bound, result checkable in O(1)."""
    lines = [f"define i64 @{name}(i64 %x) {{", "entry:", "  br label %b0"]
    value = "%x"
    for i in range(blocks):
        target = f"b{i + 1}" if i + 1 < blocks else "done"
        lines += [
            f"b{i}:",
            f"  %a{i} = add i64 {value}, {i}",
            f"  %m{i} = mul i64 %a{i}, 3",
            f"  %s{i} = sub i64 %m{i}, {i + 1}",
            f"  br label %{target}",
        ]
        value = f"%s{i}"
    lines += ["done:", f"  ret i64 {value}", "}"]
    return "\n".join(lines)


def smoke_source(functions: int, blocks: int) -> str:
    return "\n\n".join(
        _chain_source(f"chain{i}", blocks + 5 * i) for i in range(functions)
    )


def run_smoke(cache_dir: str, functions: int, blocks: int,
              expect_hits: bool) -> int:
    module = parse_module(smoke_source(functions, blocks))
    engine = ExecutionEngine(module, tier="jit", disk_cache=cache_dir)
    results = [engine.run(f"chain{i}", 7) for i in range(functions)]
    stats = engine.disk_cache.stats()
    print(f"smoke: {functions} functions x ~{blocks} blocks, "
          f"checksum={sum(results)}")
    print("diskcache:", " ".join(
        f"{key}={value}" for key, value in sorted(stats.items())))
    if expect_hits:
        if stats["misses"] or stats["hits"] != functions:
            print(f"FAIL: expected {functions} warm hits and 0 misses, "
                  f"got hits={stats['hits']} misses={stats['misses']} "
                  f"rejected={stats['rejected']}", file=sys.stderr)
            return 1
        print(f"OK: warm start served all {functions} compiles from disk")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.serve")
    sub = parser.add_subparsers(dest="command", required=True)
    smoke = sub.add_parser("smoke", help="warm-start round trip")
    smoke.add_argument("--cache", required=True,
                       help="persistent cache directory")
    smoke.add_argument("--functions", type=int, default=4)
    smoke.add_argument("--blocks", type=int, default=60)
    smoke.add_argument("--expect-hits", action="store_true",
                       help="fail unless every compile was a disk hit")
    options = parser.parse_args(argv)
    return run_smoke(options.cache, options.functions, options.blocks,
                     options.expect_hits)


if __name__ == "__main__":
    raise SystemExit(main())
