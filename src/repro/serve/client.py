"""Client shims for :class:`~repro.serve.server.VMServer`.

Two transports with one calling convention:

* :class:`VMClient` wraps an in-process server — useful for embedding
  the serving loop in a host application or test without sockets.
* :class:`SocketVMClient` speaks the server's unix-domain-socket
  protocol: 4-byte little-endian length-prefixed JSON frames, one
  request/response pair per frame, many frames per connection.

Both raise :class:`~repro.serve.server.ServeError` on server-reported
failures so callers handle in-process and remote errors uniformly.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Optional, Sequence

from .server import (
    PendingRequest,
    ServeError,
    VMServer,
    _FRAME,
    _read_frame,
)


class VMClient:
    """In-process client: a thin veneer over a live :class:`VMServer`."""

    def __init__(self, server: VMServer):
        self.server = server

    def call(self, function: str, args: Sequence[Any] = (),
             tenant: Optional[str] = None,
             timeout: Optional[float] = None) -> Any:
        return self.server.call(function, args, tenant=tenant,
                                timeout=timeout)

    def submit(self, function: str, args: Sequence[Any] = (),
               tenant: Optional[str] = None) -> PendingRequest:
        return self.server.submit(function, args, tenant=tenant)


class SocketVMClient:
    """Blocking client for the unix-domain-socket transport.

    One client owns one connection (one request stream); it is not
    thread-safe — give each requesting thread its own client, which is
    also how the server's per-stream ordering is defined.
    """

    def __init__(self, path: Any):
        self.path = str(path)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.connect(self.path)

    def call(self, function: str, args: Sequence[Any] = (),
             tenant: Optional[str] = None) -> Any:
        payload = json.dumps({
            "function": function,
            "args": list(args),
            "tenant": tenant,
        }).encode()
        self._sock.sendall(_FRAME.pack(len(payload)) + payload)
        frame = _read_frame(self._sock)
        if frame is None:
            raise ServeError("server closed the connection")
        response = json.loads(frame)
        if not response.get("ok"):
            raise ServeError(response.get("error") or "request failed")
        return response.get("value")

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "SocketVMClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
