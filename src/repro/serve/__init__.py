"""repro.serve — persistent code cache and VM-as-a-service.

Two layers turn the engine from a per-process library into serving
infrastructure:

* :class:`DiskCodeCache` (``diskcache.py``) — a content-addressed
  on-disk store of :class:`~repro.vm.jit.CompiledCode` artifacts keyed
  by (function identity hash, code-version stamp, format version).  A
  cold process attached to a warm cache skips code generation entirely:
  the JIT's cache miss path deserializes the previous run's artifact and
  goes straight to instantiation.  Writes are atomic (write + rename);
  corrupt or version-skewed entries are rejected and fall back to
  recompilation.

* :class:`VMServer` (``server.py``) / :class:`VMClient` +
  :class:`SocketVMClient` (``client.py``) — a long-lived serving loop:
  N worker threads over one shared engine, compile queue and disk
  cache, pulling admission-batched request streams from an in-process
  queue or a unix-domain socket, with per-tenant profile isolation,
  graceful drain/shutdown, and per-request latency folded into the
  ``serve.latency`` percentile histogram.

See ``docs/serving.md`` for the disk format, invalidation rules, tenant
isolation and drain semantics.
"""

from .client import SocketVMClient, VMClient
from .diskcache import DEFAULT_CACHE_DIR, DiskCodeCache
from .server import PendingRequest, Request, Response, ServeError, VMServer

__all__ = [
    "DEFAULT_CACHE_DIR",
    "DiskCodeCache",
    "VMServer",
    "VMClient",
    "SocketVMClient",
    "Request",
    "Response",
    "PendingRequest",
    "ServeError",
]
