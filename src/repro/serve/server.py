"""VM-as-a-service: a long-lived engine serving request streams.

:class:`VMServer` turns one :class:`~repro.vm.engine.ExecutionEngine`
into shared serving infrastructure: N worker threads pull requests from
an admission queue, execute them against the one engine (one JIT code
cache, one background compile queue, one persistent disk cache), and
resolve per-request futures.  The pieces:

* **admission batching** — a worker blocks for one request, then
  greedily drains up to ``batch_max - 1`` more before executing; under
  load the queue lock is paid once per batch, not once per request.
* **tenant isolation** — each request names a tenant; the worker wraps
  execution in :meth:`TierProfiler.tenant_scope`, so hotness counters,
  value feedback and promotion decisions are private per tenant while
  the compiled code they trigger is shared (code is tenant-independent,
  how hot it runs is not).
* **graceful drain/shutdown** — :meth:`drain` blocks until every
  admitted request has resolved; :meth:`shutdown` stops admission,
  optionally drains, then stops the workers.  Requests submitted after
  shutdown raise :class:`ServeError` instead of vanishing.
* **latency accounting** — every request's wall time folds into the
  ``serve.latency`` histogram timer (p50/p99 straight out of
  ``engine.stats_snapshot()``) and emits a ``serve.request`` instant.

Transports: in-process (``submit``/``call``, or :class:`VMClient`) and
a unix-domain socket speaking 4-byte-length-prefixed JSON frames
(:meth:`serve_unix`, paired with :class:`SocketVMClient`).

See ``docs/serving.md`` for the full semantics.
"""

from __future__ import annotations

import json
import os
import queue
import socket
import struct
import threading
import time
from typing import Any, Dict, List, NamedTuple, Optional, Sequence

from ..ir.function import Module
from ..obs import events as EV
from ..vm.engine import ExecutionEngine

#: per-worker stop sentinel; re-put if a batch drain swallows one meant
#: for another worker
_STOP = object()

_FRAME = struct.Struct("<I")
_MAX_FRAME = 1 << 24  # 16 MiB; a sanity bound, not a protocol limit


class ServeError(Exception):
    """A request could not be served (rejected, failed, or timed out)."""


class Request(NamedTuple):
    """One unit of admission: call ``function`` with ``args`` on behalf
    of ``tenant`` (None = the default profile scope)."""

    function: str
    args: Sequence[Any]
    tenant: Optional[str] = None


class Response(NamedTuple):
    """The wire-level outcome of one request."""

    ok: bool
    value: Any = None
    error: Optional[str] = None


class PendingRequest:
    """A future for one admitted request.

    Resolved exactly once by the worker that executes it;
    :meth:`result` blocks until then and re-raises the execution error
    (a :class:`~repro.vm.runtime.Trap`, a missing-function
    :class:`KeyError`, ...) in the caller's thread.
    """

    __slots__ = ("request", "_event", "_value", "_error")

    def __init__(self, request: Request):
        self.request = request
        self._event = threading.Event()
        self._value: Any = None
        self._error: Optional[BaseException] = None

    def _resolve(self, value: Any) -> None:
        self._value = value
        self._event.set()

    def _reject(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Any:
        if not self._event.wait(timeout):
            raise ServeError(
                f"request @{self.request.function} timed out after "
                f"{timeout}s")
        if self._error is not None:
            raise self._error
        return self._value

    def __repr__(self) -> str:  # pragma: no cover
        state = ("pending" if not self._event.is_set()
                 else "failed" if self._error is not None else "done")
        return f"<PendingRequest @{self.request.function} {state}>"


class VMServer:
    """N worker threads serving request streams over one shared engine.

    Construct from a module (the server builds and owns the engine) or
    pass a prebuilt ``engine=`` to share one; ``disk_cache`` and
    ``compile_queue`` are forwarded so a server restart warm-starts
    from the previous process's compiles.
    """

    def __init__(self, module: Optional[Module] = None, *,
                 engine: Optional[ExecutionEngine] = None,
                 tier: str = "tiered", workers: int = 4,
                 batch_max: int = 8, disk_cache: Any = None,
                 compile_queue: Any = None, flight: bool = False,
                 call_threshold: Optional[int] = None,
                 backedge_threshold: Optional[int] = None):
        if (module is None) == (engine is None):
            raise ValueError("pass exactly one of module= or engine=")
        if workers < 1:
            raise ValueError("VMServer needs at least one worker")
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if engine is None:
            kwargs: Dict[str, Any] = {}
            if call_threshold is not None:
                kwargs["call_threshold"] = call_threshold
            if backedge_threshold is not None:
                kwargs["backedge_threshold"] = backedge_threshold
            engine = ExecutionEngine(
                module, tier=tier, disk_cache=disk_cache,
                compile_queue=compile_queue, flight=flight, **kwargs)
        self.engine = engine
        self.workers = workers
        self.batch_max = batch_max
        self._queue: "queue.Queue[Any]" = queue.Queue()
        self._cond = threading.Condition()
        self._outstanding = 0
        self._shutdown = False
        self._stopped = False
        #: lifetime counters (guarded by ``_cond``'s lock)
        self.received = 0
        self.completed = 0
        self.errors = 0
        self.batches = 0
        self.max_batch = 0
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"serve-worker-{index}", daemon=True)
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()
        self._listener: Optional[socket.socket] = None
        self._socket_path: Optional[str] = None
        self._accept_thread: Optional[threading.Thread] = None

    # -- admission ----------------------------------------------------------------

    def submit(self, function: str, args: Sequence[Any] = (),
               tenant: Optional[str] = None) -> PendingRequest:
        """Admit one request; returns its future immediately."""
        pending = PendingRequest(Request(function, tuple(args), tenant))
        with self._cond:
            if self._shutdown:
                raise ServeError("server is shut down")
            self.received += 1
            self._outstanding += 1
        self._queue.put(pending)
        return pending

    def call(self, function: str, args: Sequence[Any] = (),
             tenant: Optional[str] = None,
             timeout: Optional[float] = None) -> Any:
        """Admit one request and block for its result."""
        return self.submit(function, args, tenant).result(timeout)

    # -- the workers --------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            # admission batching: drain greedily up to batch_max so a
            # loaded queue is paid for once per batch
            batch: List[PendingRequest] = [item]
            while len(batch) < self.batch_max:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _STOP:
                    # that sentinel was meant for some worker — put it
                    # back and finish this batch first
                    self._queue.put(extra)
                    break
                batch.append(extra)
            with self._cond:
                self.batches += 1
                self.max_batch = max(self.max_batch, len(batch))
            for pending in batch:
                self._execute(pending)

    def _execute(self, pending: PendingRequest) -> None:
        request = pending.request
        engine = self.engine
        ok = True
        start = time.perf_counter()
        try:
            func = engine.module.get_function(request.function)
            with engine.profiler.tenant_scope(request.tenant):
                value = engine.call(func, list(request.args))
            pending._resolve(value)
        except BaseException as error:
            ok = False
            pending._reject(error)
        finally:
            engine.metrics.record_time(
                EV.SERVE_LATENCY, time.perf_counter() - start)
            tel = engine.telemetry
            if tel.enabled:
                tel.event(EV.SERVE_REQUEST, function=request.function,
                          tenant=request.tenant, ok=ok)
            else:
                engine.metrics.inc(EV.SERVE_REQUEST)
            with self._cond:
                self.completed += 1
                if not ok:
                    self.errors += 1
                self._outstanding -= 1
                self._cond.notify_all()

    # -- lifecycle ----------------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every admitted request has resolved.

        Returns True when the server went idle, False on timeout.  New
        requests may still be admitted while draining — callers wanting
        a terminal drain use :meth:`shutdown`.
        """
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._cond:
            while self._outstanding:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(remaining)
            return True

    def shutdown(self, wait: bool = True,
                 timeout: Optional[float] = None) -> bool:
        """Stop admission, drain in-flight work, stop the workers.

        With ``wait=False`` the queue is abandoned: undrained requests
        are rejected with :class:`ServeError` so no caller blocks
        forever.  Idempotent.
        """
        with self._cond:
            if self._stopped:
                return True
            self._shutdown = True
        drained = True
        if wait:
            drained = self.drain(timeout)
        listener = self._listener
        if listener is not None:
            self._listener = None
            try:
                listener.close()
            except OSError:
                pass
        if self._socket_path is not None:
            try:
                os.unlink(self._socket_path)
            except OSError:
                pass
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=5.0)
        # reject anything still sitting in the queue (wait=False path)
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _STOP:
                continue
            item._reject(ServeError("server shut down before execution"))
            with self._cond:
                self._outstanding -= 1
                self._cond.notify_all()
        with self._cond:
            self._stopped = True
        return drained

    def __enter__(self) -> "VMServer":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- socket transport ---------------------------------------------------------

    def serve_unix(self, path: Any) -> str:
        """Listen for request streams on a unix-domain socket.

        Frames are ``<u32 little-endian length><JSON payload>``; each
        request object is ``{"function": str, "args": [...],
        "tenant": str|null}`` and each response ``{"ok": bool,
        "value": ..., "error": str|null}``.  One connection is one
        stream: frames are served in order, the connection closes on
        EOF.  Returns the bound path.
        """
        path = str(path)
        with self._cond:
            if self._shutdown:
                raise ServeError("server is shut down")
            if self._listener is not None:
                raise ServeError("server is already listening")
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(path)
        listener.listen()
        self._listener = listener
        self._socket_path = path
        self._accept_thread = threading.Thread(
            target=self._accept_loop, args=(listener,),
            name="serve-accept", daemon=True)
        self._accept_thread.start()
        return path

    def _accept_loop(self, listener: socket.socket) -> None:
        while True:
            try:
                conn, _ = listener.accept()
            except OSError:
                return  # listener closed by shutdown
            threading.Thread(target=self._serve_connection, args=(conn,),
                             name="serve-conn", daemon=True).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while True:
                frame = _read_frame(conn)
                if frame is None:
                    return
                response = self._handle_frame(frame)
                _write_frame(conn, response)
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _handle_frame(self, frame: bytes) -> Response:
        try:
            message = json.loads(frame)
            function = message["function"]
            args = message.get("args", [])
            tenant = message.get("tenant")
            if not isinstance(function, str) or not isinstance(args, list):
                raise ValueError("malformed request object")
        except (ValueError, KeyError, TypeError) as error:
            return Response(ok=False, error=f"bad request: {error}")
        try:
            value = self.call(function, args, tenant=tenant)
        except BaseException as error:
            return Response(ok=False, error=str(error) or repr(error))
        return Response(ok=True, value=value)

    # -- statistics ---------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._cond:
            return {
                "workers": self.workers,
                "batch_max": self.batch_max,
                "received": self.received,
                "completed": self.completed,
                "errors": self.errors,
                "outstanding": self._outstanding,
                "batches": self.batches,
                "max_batch": self.max_batch,
            }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<VMServer workers={self.workers} "
                f"completed={self.completed} errors={self.errors}>")


# -- framing helpers (shared with SocketVMClient) ---------------------------------


def _read_frame(conn: socket.socket) -> Optional[bytes]:
    header = _recv_exact(conn, _FRAME.size)
    if header is None:
        return None
    (length,) = _FRAME.unpack(header)
    if length > _MAX_FRAME:
        raise OSError(f"frame too large: {length}")
    payload = _recv_exact(conn, length)
    if payload is None:
        raise OSError("connection closed mid-frame")
    return payload


def _write_frame(conn: socket.socket, response: Response) -> None:
    payload = json.dumps(
        {"ok": response.ok, "value": response.value,
         "error": response.error}).encode()
    conn.sendall(_FRAME.pack(len(payload)) + payload)


def _recv_exact(conn: socket.socket, count: int) -> Optional[bytes]:
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        chunk = conn.recv(remaining)
        if not chunk:
            if chunks:
                raise OSError("connection closed mid-frame")
            return None  # clean EOF on a frame boundary
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
