"""TinyVM — an interactive shell over the whole stack.

The paper's artifact is *tinyvm*, "a proof-of-concept virtual machine"
for experimenting with OSRKit interactively.  This module reproduces that
experience: load IR or mini-C modules, inspect functions, insert OSR
points, call functions, and watch transitions fire.

Run ``python -m repro.tinyvm`` for a REPL, or drive it programmatically::

    vm = TinyVM()
    vm.execute("load_ir examples/loop.ll")
    vm.execute("insert_osr 1000 hot_loop loop")
    print(vm.execute("hot_loop(100000)"))

Commands::

    load_ir <file>            parse an IR file into the session module
    load_c <file>             compile a mini-C file
    load_matlab <file>        load MATLAB-subset functions (run via mcvm_run)
    show_funs                 list functions
    show <fn>                 print a function's IR
    show_blocks <fn>          list a function's basic blocks
    insert_osr <t> <fn> <b>   resolved OSR to a clone at block <b>, threshold <t>
    insert_open_osr <t> <fn> <b>   open OSR (clone generator) at block <b>
    remove_osr <fn>           de-instrument the last OSR point of <fn>
    opt <fn> [pipeline]       run 'unoptimized' or 'optimized' pipeline
    verify                    verify every function in the module
    stats                     engine statistics (compiles, calls)
    mcvm_run <fn> <args...>   run a loaded MATLAB function (@name for handles)
    <fn>(<args>)              call an IR function (ints/floats)
    help / quit
"""

from __future__ import annotations

import re
import shlex
from typing import Dict, List, Optional

from .core import (
    FromParam,
    HotCounterCondition,
    StateMapping,
    generate_continuation,
    insert_open_osr_point,
    insert_resolved_osr_point,
    remove_osr_point,
    required_landing_state,
)
from .frontend import compile_c
from .ir import Module, parse_module, print_function, verify_module
from .ir.function import Function
from .transform import PassManager
from .vm import ExecutionEngine


class TinyVMError(Exception):
    pass


_CALL_RE = re.compile(r"^\s*([A-Za-z_][\w.]*)\s*\((.*)\)\s*$")


class TinyVM:
    """A stateful interactive session."""

    def __init__(self) -> None:
        self.module = Module("tinyvm")
        self.engine = ExecutionEngine(self.module)
        self.osr_points: Dict[str, list] = {}
        self.mcvm = None

    # -- command dispatch -----------------------------------------------------

    def execute(self, line: str) -> str:
        """Execute one command line; returns the textual response."""
        line = line.strip()
        if not line or line.startswith("#"):
            return ""
        call = _CALL_RE.match(line)
        if call and not line.split()[0] in _COMMANDS:
            return self._call(call.group(1), call.group(2))
        parts = shlex.split(line)
        command, args = parts[0].lower(), parts[1:]
        handler = _COMMANDS.get(command)
        if handler is None:
            raise TinyVMError(
                f"unknown command {command!r} (try 'help')"
            )
        return handler(self, args)

    # -- loading ----------------------------------------------------------------

    def _merge(self, incoming: Module) -> List[str]:
        names = []
        for gv in incoming.globals:
            if not self.module.has_global(gv.name):
                gv.module = None
                self.module.add_global(gv)
        for func in incoming.functions:
            if self.module.has_function(func.name):
                raise TinyVMError(f"@{func.name} already loaded")
            func.module = None
            self.module.add_function(func)
            names.append(func.name)
        return names

    def cmd_load_ir(self, args: List[str]) -> str:
        if len(args) != 1:
            raise TinyVMError("usage: load_ir <file>")
        with open(args[0]) as fh:
            incoming = parse_module(fh.read())
        names = self._merge(incoming)
        return f"loaded {len(names)} function(s): {', '.join(names)}"

    def cmd_load_c(self, args: List[str]) -> str:
        if len(args) != 1:
            raise TinyVMError("usage: load_c <file>")
        with open(args[0]) as fh:
            incoming = compile_c(fh.read())
        names = self._merge(incoming)
        return f"compiled {len(names)} function(s): {', '.join(names)}"

    def cmd_load_matlab(self, args: List[str]) -> str:
        if len(args) != 1:
            raise TinyVMError("usage: load_matlab <file>")
        from .mcvm import McVM

        with open(args[0]) as fh:
            self.mcvm = McVM(fh.read(), enable_osr=True)
        names = ", ".join(self.mcvm.functions)
        return f"loaded MATLAB functions: {names} (run with mcvm_run)"

    # -- inspection ----------------------------------------------------------------

    def _function(self, name: str) -> Function:
        if not self.module.has_function(name):
            raise TinyVMError(f"no function @{name} (see show_funs)")
        return self.module.get_function(name)

    def cmd_show_funs(self, args: List[str]) -> str:
        rows = []
        for func in self.module.functions:
            kind = "declare" if func.is_declaration else "define"
            rows.append(f"{kind}  @{func.name}  {func.function_type}")
        return "\n".join(rows) if rows else "(no functions loaded)"

    def cmd_show(self, args: List[str]) -> str:
        if len(args) != 1:
            raise TinyVMError("usage: show <function>")
        return print_function(self._function(args[0]))

    def cmd_show_blocks(self, args: List[str]) -> str:
        if len(args) != 1:
            raise TinyVMError("usage: show_blocks <function>")
        func = self._function(args[0])
        return "\n".join(
            f"%{b.name}  ({len(b)} instructions)" for b in func.blocks
        )

    # -- OSR ---------------------------------------------------------------------------

    def _location(self, func: Function, block_name: str):
        block = func.get_block(block_name)
        return block.instructions[block.first_non_phi_index]

    def cmd_insert_osr(self, args: List[str]) -> str:
        if len(args) != 3:
            raise TinyVMError("usage: insert_osr <threshold> <fn> <block>")
        threshold = int(args[0])
        func = self._function(args[1])
        location = self._location(func, args[2])
        point = insert_resolved_osr_point(
            func, location, HotCounterCondition(threshold),
            engine=self.engine,
        )
        self.osr_points.setdefault(func.name, []).append(point)
        return (
            f"resolved OSR point in @{func.name} at %{args[2]} "
            f"(threshold {threshold}); continuation "
            f"@{point.continuation.name}"
        )

    def cmd_insert_open_osr(self, args: List[str]) -> str:
        if len(args) != 3:
            raise TinyVMError(
                "usage: insert_open_osr <threshold> <fn> <block>"
            )
        threshold = int(args[0])
        func = self._function(args[1])
        location = self._location(func, args[2])
        module = self.module
        env: dict = {"live": None}

        def clone_generator(f, block, _env, val):
            live = env["live"]
            mapping = StateMapping()
            by_name = {v.name: i for i, v in enumerate(live)}
            for value in required_landing_state(f, block):
                mapping.set(value, FromParam(by_name[value.name]))
            cont = generate_continuation(
                f, block, live, mapping,
                name=module.unique_name(f"{f.name}to"), module=module,
            )
            print(f"[tinyvm] open OSR fired in @{f.name}; generated "
                  f"@{cont.name}")
            return cont

        point = insert_open_osr_point(
            func, location, HotCounterCondition(threshold),
            clone_generator, self.engine, env=env,
        )
        env["live"] = point.live_values
        self.osr_points.setdefault(func.name, []).append(point)
        return (
            f"open OSR point in @{func.name} at %{args[2]} "
            f"(threshold {threshold}); stub @{point.stub.name}"
        )

    def cmd_remove_osr(self, args: List[str]) -> str:
        if len(args) != 1:
            raise TinyVMError("usage: remove_osr <fn>")
        points = self.osr_points.get(args[0])
        if not points:
            raise TinyVMError(f"@{args[0]} has no OSR points")
        remove_osr_point(points.pop(), engine=self.engine)
        return f"removed the most recent OSR point of @{args[0]}"

    # -- pipeline / engine ------------------------------------------------------------------

    def cmd_opt(self, args: List[str]) -> str:
        if not 1 <= len(args) <= 2:
            raise TinyVMError("usage: opt <fn> [unoptimized|optimized]")
        func = self._function(args[0])
        pipeline = args[1] if len(args) == 2 else "optimized"
        before = func.instruction_count
        PassManager.pipeline(pipeline).run(func)
        self.engine.invalidate(func)
        return (
            f"@{func.name}: {before} -> {func.instruction_count} "
            f"instructions ({pipeline})"
        )

    def cmd_verify(self, args: List[str]) -> str:
        verify_module(self.module)
        count = sum(1 for f in self.module.functions
                    if not f.is_declaration)
        return f"{count} function(s) verified OK"

    def cmd_stats(self, args: List[str]) -> str:
        lines = [f"functions compiled: {self.engine.compile_count}"]
        for name, count in sorted(self.engine.call_counts.items()):
            lines.append(f"  calls via engine @{name}: {count}")
        return "\n".join(lines)

    def cmd_mcvm_run(self, args: List[str]) -> str:
        if self.mcvm is None:
            raise TinyVMError("no MATLAB module loaded (load_matlab)")
        if not args:
            raise TinyVMError("usage: mcvm_run <fn> <args...>")
        values = [a if a.startswith("@") else float(a) for a in args[1:]]
        result = self.mcvm.run(args[0], *values)
        return repr(result)

    def cmd_help(self, args: List[str]) -> str:
        return __doc__.split("Commands::", 1)[1].strip()

    def cmd_quit(self, args: List[str]) -> str:
        raise EOFError

    # -- calls --------------------------------------------------------------------------------

    def _call(self, name: str, arg_text: str) -> str:
        func = self._function(name)
        args = []
        arg_text = arg_text.strip()
        if arg_text:
            for piece in arg_text.split(","):
                piece = piece.strip()
                args.append(float(piece) if ("." in piece or "e" in piece)
                            else int(piece, 0))
        result = self.engine.run(name, *args)
        return repr(result)


_COMMANDS = {
    "load_ir": TinyVM.cmd_load_ir,
    "load_c": TinyVM.cmd_load_c,
    "load_matlab": TinyVM.cmd_load_matlab,
    "show_funs": TinyVM.cmd_show_funs,
    "show": TinyVM.cmd_show,
    "show_blocks": TinyVM.cmd_show_blocks,
    "insert_osr": TinyVM.cmd_insert_osr,
    "insert_open_osr": TinyVM.cmd_insert_open_osr,
    "remove_osr": TinyVM.cmd_remove_osr,
    "opt": TinyVM.cmd_opt,
    "verify": TinyVM.cmd_verify,
    "stats": TinyVM.cmd_stats,
    "mcvm_run": TinyVM.cmd_mcvm_run,
    "help": TinyVM.cmd_help,
    "quit": TinyVM.cmd_quit,
    "exit": TinyVM.cmd_quit,
}


def main() -> None:  # pragma: no cover - interactive loop
    vm = TinyVM()
    print("tinyvm — OSRKit playground (type 'help' for commands)")
    while True:
        try:
            line = input("tinyvm> ")
        except (EOFError, KeyboardInterrupt):
            print()
            break
        try:
            output = vm.execute(line)
        except EOFError:
            break
        except (TinyVMError, Exception) as exc:  # noqa: BLE001
            output = f"error: {exc}"
        if output:
            print(output)


if __name__ == "__main__":  # pragma: no cover
    main()
