"""repro — a reproduction of "Flexible On-Stack Replacement in LLVM"
(D'Elia & Demetrescu, CGO 2016).

The package rebuilds the paper's full stack in pure Python:

* :mod:`repro.ir` — a typed SSA IR (the LLVM-IR substitute);
* :mod:`repro.analysis` — dominators, liveness, loops, CFG utilities;
* :mod:`repro.transform` — mem2reg, DCE, const-fold, simplify-CFG,
  inlining, cloning, SSA repair;
* :mod:`repro.vm` — the execution engine (MCJIT substitute) with an
  interpreter tier and a Python-codegen JIT tier;
* :mod:`repro.core` — **OSRKit**: open/resolved OSR instrumentation,
  continuation generation, state mappings with compensation code,
  multi-version management, and a McOSR-style baseline;
* :mod:`repro.frontend` — a mini-C front-end (the clang substitute);
* :mod:`repro.shootout` — the shootout benchmark suite of Table 1;
* :mod:`repro.mcvm` — a mini-McVM with the paper's OSR-based feval
  optimizer (Section 4);
* :mod:`repro.experiments` — drivers regenerating Figures 10/11 and
  Tables 2-4.

Quickstart::

    from repro.ir import parse_module
    from repro.vm import ExecutionEngine
    from repro.core import insert_resolved_osr_point, HotCounterCondition

    module = parse_module(ir_text)
    engine = ExecutionEngine(module)
    func = module.get_function("hot_loop")
    loc = func.get_block("loop.body").instructions[0]
    insert_resolved_osr_point(func, loc, HotCounterCondition(1000),
                              engine=engine)
    engine.run("hot_loop", *args)   # transfers to a clone when hot
"""

__version__ = "0.1.0"

__all__ = [
    "ir",
    "analysis",
    "transform",
    "vm",
    "core",
    "frontend",
    "shootout",
    "mcvm",
    "experiments",
    "__version__",
]
