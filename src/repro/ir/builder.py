"""IRBuilder — convenience factory for emitting instructions.

Mirrors LLVM's ``IRBuilder``: it tracks an insertion point (a basic block,
and optionally a position within it) and provides one method per
instruction.  Constant-folding of trivial cases is *not* done here; the
builder emits exactly what it is asked so tests can rely on structure.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from . import types as T
from .function import BasicBlock, Function
from .instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CondBranchInst,
    FCmpInst,
    GEPInst,
    GuardInst,
    ICmpInst,
    IndirectCallInst,
    Instruction,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from .values import Constant, ConstantFloat, ConstantInt, ConstantNull, Value


class IRBuilder:
    """Emit instructions at a movable insertion point."""

    def __init__(self, block: Optional[BasicBlock] = None):
        self._block: Optional[BasicBlock] = block
        self._index: Optional[int] = None  # None = append at end

    # -- insertion point -----------------------------------------------------

    @property
    def block(self) -> BasicBlock:
        if self._block is None:
            raise ValueError("IRBuilder has no insertion point")
        return self._block

    @property
    def function(self) -> Function:
        return self.block.parent

    def position_at_end(self, block: BasicBlock) -> "IRBuilder":
        self._block = block
        self._index = None
        return self

    def position_before(self, inst: Instruction) -> "IRBuilder":
        if inst.parent is None:
            raise ValueError("instruction is not in a block")
        self._block = inst.parent
        self._index = inst.parent.instructions.index(inst)
        return self

    def position_at_start(self, block: BasicBlock) -> "IRBuilder":
        """Position after any leading phis (the first valid insertion slot)."""
        self._block = block
        self._index = block.first_non_phi_index
        return self

    def _insert(self, inst: Instruction) -> Instruction:
        if self._index is None:
            self.block.append(inst)
        else:
            self.block.insert(self._index, inst)
            self._index += 1
        return inst

    # -- constants ------------------------------------------------------------

    @staticmethod
    def const_int(type: T.IntType, value: int) -> ConstantInt:
        return ConstantInt(type, value)

    @staticmethod
    def const_i64(value: int) -> ConstantInt:
        return ConstantInt(T.i64, value)

    @staticmethod
    def const_i32(value: int) -> ConstantInt:
        return ConstantInt(T.i32, value)

    @staticmethod
    def const_i1(value: bool) -> ConstantInt:
        return ConstantInt(T.i1, 1 if value else 0)

    @staticmethod
    def const_double(value: float) -> ConstantFloat:
        return ConstantFloat(T.f64, value)

    @staticmethod
    def const_null(type: T.PointerType) -> ConstantNull:
        return ConstantNull(type)

    # -- arithmetic -------------------------------------------------------------

    def _binop(self, opcode: str, lhs: Value, rhs: Value, name: str,
               flags: Sequence[str] = ()) -> BinaryInst:
        return self._insert(BinaryInst(opcode, lhs, rhs, name, flags))

    def add(self, lhs: Value, rhs: Value, name: str = "",
            flags: Sequence[str] = ()) -> BinaryInst:
        return self._binop("add", lhs, rhs, name, flags)

    def sub(self, lhs: Value, rhs: Value, name: str = "",
            flags: Sequence[str] = ()) -> BinaryInst:
        return self._binop("sub", lhs, rhs, name, flags)

    def mul(self, lhs: Value, rhs: Value, name: str = "",
            flags: Sequence[str] = ()) -> BinaryInst:
        return self._binop("mul", lhs, rhs, name, flags)

    def sdiv(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self._binop("sdiv", lhs, rhs, name)

    def udiv(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self._binop("udiv", lhs, rhs, name)

    def srem(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self._binop("srem", lhs, rhs, name)

    def urem(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self._binop("urem", lhs, rhs, name)

    def and_(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self._binop("and", lhs, rhs, name)

    def or_(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self._binop("or", lhs, rhs, name)

    def xor(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self._binop("xor", lhs, rhs, name)

    def shl(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self._binop("shl", lhs, rhs, name)

    def lshr(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self._binop("lshr", lhs, rhs, name)

    def ashr(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self._binop("ashr", lhs, rhs, name)

    def fadd(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self._binop("fadd", lhs, rhs, name)

    def fsub(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self._binop("fsub", lhs, rhs, name)

    def fmul(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self._binop("fmul", lhs, rhs, name)

    def fdiv(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self._binop("fdiv", lhs, rhs, name)

    def frem(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self._binop("frem", lhs, rhs, name)

    def neg(self, value: Value, name: str = "") -> BinaryInst:
        zero = ConstantInt(value.type, 0)
        return self.sub(zero, value, name)

    def fneg(self, value: Value, name: str = "") -> BinaryInst:
        zero = ConstantFloat(value.type, 0.0)
        return self.fsub(zero, value, name)

    def not_(self, value: Value, name: str = "") -> BinaryInst:
        ones = ConstantInt(value.type, -1 if value.type.bits > 1 else 1)
        return self.xor(value, ones, name)

    # -- comparisons ---------------------------------------------------------------

    def icmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> ICmpInst:
        return self._insert(ICmpInst(predicate, lhs, rhs, name))

    def fcmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> FCmpInst:
        return self._insert(FCmpInst(predicate, lhs, rhs, name))

    def select(self, cond: Value, if_true: Value, if_false: Value,
               name: str = "") -> SelectInst:
        return self._insert(SelectInst(cond, if_true, if_false, name))

    def guard(self, cond: Value, guard_id: str,
              live_values: Sequence[Value] = (),
              forced: bool = False) -> GuardInst:
        return self._insert(GuardInst(cond, guard_id, live_values, forced))

    # -- memory -----------------------------------------------------------------------

    def alloca(self, type: T.Type, name: str = "", count: int = 1) -> AllocaInst:
        return self._insert(AllocaInst(type, name, count))

    def load(self, pointer: Value, name: str = "") -> LoadInst:
        return self._insert(LoadInst(pointer, name))

    def store(self, value: Value, pointer: Value) -> StoreInst:
        return self._insert(StoreInst(value, pointer))

    def gep(self, pointer: Value, indices: Sequence[Union[Value, int]],
            name: str = "", inbounds: bool = False) -> GEPInst:
        resolved: List[Value] = [
            ConstantInt(T.i64, idx) if isinstance(idx, int) else idx
            for idx in indices
        ]
        return self._insert(GEPInst(pointer, resolved, name, inbounds))

    # -- casts -----------------------------------------------------------------------

    def cast(self, opcode: str, value: Value, to_type: T.Type,
             name: str = "") -> CastInst:
        return self._insert(CastInst(opcode, value, to_type, name))

    def bitcast(self, value: Value, to_type: T.Type, name: str = "") -> CastInst:
        return self.cast("bitcast", value, to_type, name)

    def inttoptr(self, value: Value, to_type: T.Type, name: str = "") -> CastInst:
        return self.cast("inttoptr", value, to_type, name)

    def ptrtoint(self, value: Value, to_type: T.Type, name: str = "") -> CastInst:
        return self.cast("ptrtoint", value, to_type, name)

    def trunc(self, value: Value, to_type: T.Type, name: str = "") -> CastInst:
        return self.cast("trunc", value, to_type, name)

    def zext(self, value: Value, to_type: T.Type, name: str = "") -> CastInst:
        return self.cast("zext", value, to_type, name)

    def sext(self, value: Value, to_type: T.Type, name: str = "") -> CastInst:
        return self.cast("sext", value, to_type, name)

    def sitofp(self, value: Value, to_type: T.Type, name: str = "") -> CastInst:
        return self.cast("sitofp", value, to_type, name)

    def fptosi(self, value: Value, to_type: T.Type, name: str = "") -> CastInst:
        return self.cast("fptosi", value, to_type, name)

    # -- calls -----------------------------------------------------------------------

    def call(self, callee, args: Sequence[Value], name: str = "",
             tail: bool = False) -> CallInst:
        return self._insert(CallInst(callee, args, name, tail))

    def call_indirect(self, callee: Value, args: Sequence[Value],
                      name: str = "", tail: bool = False) -> IndirectCallInst:
        return self._insert(IndirectCallInst(callee, args, name, tail))

    # -- phi -------------------------------------------------------------------------

    def phi(self, type: T.Type, name: str = "",
            incoming: Sequence[Tuple[Value, BasicBlock]] = ()) -> PhiInst:
        node = PhiInst(type, name)
        # phis must stay grouped at the top of the block
        index = self.block.first_non_phi_index
        self.block.insert(index, node)
        if self._index is not None and self._index >= index:
            self._index += 1
        for value, block in incoming:
            node.add_incoming(value, block)
        return node

    # -- terminators --------------------------------------------------------------------

    def ret(self, value: Optional[Value] = None) -> RetInst:
        return self._insert(RetInst(value))

    def ret_void(self) -> RetInst:
        return self._insert(RetInst(None))

    def br(self, target: BasicBlock) -> BranchInst:
        return self._insert(BranchInst(target))

    def cond_br(self, cond: Value, if_true: BasicBlock,
                if_false: BasicBlock) -> CondBranchInst:
        return self._insert(CondBranchInst(cond, if_true, if_false))

    def switch(self, value: Value, default: BasicBlock,
               cases: Sequence[Tuple[Constant, BasicBlock]] = ()) -> SwitchInst:
        return self._insert(SwitchInst(value, default, cases))

    def unreachable(self) -> UnreachableInst:
        return self._insert(UnreachableInst())
