"""Instruction set of the repro IR.

The instruction vocabulary mirrors the subset of LLVM IR that the OSRKit
paper manipulates: integer/float arithmetic, comparisons, memory access
(alloca/load/store/gep), casts, calls (direct and indirect), phi nodes,
select, and the terminators ret/br/condbr/switch/unreachable.

Instructions are :class:`~repro.ir.values.User` values that live inside a
basic block.  Operand edges are tracked bidirectionally so the OSR passes
can rewrite live values, fix phi nodes and drop dead code safely.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from .types import (
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    Type,
    i1,
    i64,
    void,
)
from .values import Constant, User, Value

if TYPE_CHECKING:  # pragma: no cover
    from .function import BasicBlock


class Instruction(User):
    """Base class of all instructions."""

    __slots__ = ("parent",)

    #: mnemonic used by the printer; overridden per subclass
    opcode: str = "?"

    def __init__(self, type: Type, operands: List[Value], name: str = ""):
        super().__init__(type, operands, name)
        self.parent: Optional["BasicBlock"] = None

    # -- placement ----------------------------------------------------------

    @property
    def function(self):
        return self.parent.parent if self.parent is not None else None

    def erase_from_parent(self) -> None:
        """Unlink from the containing block and drop operand references."""
        if self.parent is not None:
            self.parent.remove(self)
        self.drop_all_references()

    def move_before(self, other: "Instruction") -> None:
        """Relocate this instruction immediately before ``other``."""
        if other.parent is None:
            raise ValueError("target instruction is not in a block")
        if self.parent is not None:
            self.parent.remove(self)
        block = other.parent
        index = block.instructions.index(other)
        block.insert(index, self)

    # -- classification -------------------------------------------------------

    @property
    def is_terminator(self) -> bool:
        return isinstance(self, TerminatorInst)

    @property
    def is_phi(self) -> bool:
        return isinstance(self, PhiInst)

    def has_side_effects(self) -> bool:
        """Conservative: may this instruction write memory / control flow /
        call arbitrary code?  Used by DCE to decide erasability."""
        return isinstance(
            self, (StoreInst, CallInst, IndirectCallInst, TerminatorInst)
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.ref}>"


class TerminatorInst(Instruction):
    """Base of instructions that end a basic block."""

    __slots__ = ()

    def successors(self) -> List["BasicBlock"]:
        raise NotImplementedError

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        """Retarget every edge to ``old`` to point to ``new``."""
        for index, op in enumerate(self._operands):
            if op is old:
                self.set_operand(index, new)


# ---------------------------------------------------------------------------
# Arithmetic and logic
# ---------------------------------------------------------------------------

#: integer binary opcodes and whether they can trap (division by zero)
INT_BINOPS = {
    "add", "sub", "mul", "sdiv", "udiv", "srem", "urem",
    "and", "or", "xor", "shl", "lshr", "ashr",
}
FLOAT_BINOPS = {"fadd", "fsub", "fmul", "fdiv", "frem"}


class BinaryInst(Instruction):
    """A two-operand arithmetic/logic instruction, e.g. ``add i64 %a, %b``."""

    __slots__ = ("opcode", "flags")

    def __init__(
        self,
        opcode: str,
        lhs: Value,
        rhs: Value,
        name: str = "",
        flags: Sequence[str] = (),
    ):
        if opcode not in INT_BINOPS and opcode not in FLOAT_BINOPS:
            raise ValueError(f"unknown binary opcode {opcode!r}")
        if lhs.type != rhs.type:
            raise TypeError(
                f"binary operand type mismatch: {lhs.type} vs {rhs.type}"
            )
        super().__init__(lhs.type, [lhs, rhs], name)
        self.opcode = opcode
        #: e.g. ('nsw', 'nuw') — carried for fidelity with LLVM listings
        self.flags = tuple(flags)

    @property
    def lhs(self) -> Value:
        return self.get_operand(0)

    @property
    def rhs(self) -> Value:
        return self.get_operand(1)


ICMP_PREDICATES = {"eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"}
FCMP_PREDICATES = {"oeq", "one", "olt", "ole", "ogt", "oge", "ord", "uno"}


class ICmpInst(Instruction):
    """Integer/pointer comparison producing an ``i1``."""

    __slots__ = ("predicate",)
    opcode = "icmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in ICMP_PREDICATES:
            raise ValueError(f"unknown icmp predicate {predicate!r}")
        if lhs.type != rhs.type:
            raise TypeError(f"icmp type mismatch: {lhs.type} vs {rhs.type}")
        super().__init__(i1, [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.get_operand(0)

    @property
    def rhs(self) -> Value:
        return self.get_operand(1)


class FCmpInst(Instruction):
    """Floating-point comparison producing an ``i1``."""

    __slots__ = ("predicate",)
    opcode = "fcmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in FCMP_PREDICATES:
            raise ValueError(f"unknown fcmp predicate {predicate!r}")
        if lhs.type != rhs.type:
            raise TypeError(f"fcmp type mismatch: {lhs.type} vs {rhs.type}")
        super().__init__(i1, [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.get_operand(0)

    @property
    def rhs(self) -> Value:
        return self.get_operand(1)


class SelectInst(Instruction):
    """``select i1 %c, T %a, T %b`` — branch-free conditional."""

    __slots__ = ()
    opcode = "select"

    def __init__(self, cond: Value, if_true: Value, if_false: Value, name: str = ""):
        if cond.type != i1:
            raise TypeError(f"select condition must be i1, got {cond.type}")
        if if_true.type != if_false.type:
            raise TypeError(
                f"select arm type mismatch: {if_true.type} vs {if_false.type}"
            )
        super().__init__(if_true.type, [cond, if_true, if_false], name)

    @property
    def condition(self) -> Value:
        return self.get_operand(0)

    @property
    def true_value(self) -> Value:
        return self.get_operand(1)

    @property
    def false_value(self) -> Value:
        return self.get_operand(2)


# ---------------------------------------------------------------------------
# Memory
# ---------------------------------------------------------------------------


class AllocaInst(Instruction):
    """Stack allocation; yields a pointer into the current frame."""

    __slots__ = ("allocated_type", "count")
    opcode = "alloca"

    def __init__(self, allocated_type: Type, name: str = "", count: int = 1):
        super().__init__(PointerType(allocated_type), [], name)
        self.allocated_type = allocated_type
        self.count = count

    def has_side_effects(self) -> bool:
        # An alloca is erasable only when unused, which generic DCE already
        # requires; it does not observe or mutate other state.
        return False


class LoadInst(Instruction):
    """``load T, T* %p``."""

    __slots__ = ()
    opcode = "load"

    def __init__(self, pointer: Value, name: str = ""):
        if not isinstance(pointer.type, PointerType):
            raise TypeError(f"load requires a pointer, got {pointer.type}")
        super().__init__(pointer.type.pointee, [pointer], name)

    @property
    def pointer(self) -> Value:
        return self.get_operand(0)


class StoreInst(Instruction):
    """``store T %v, T* %p``."""

    __slots__ = ()
    opcode = "store"

    def __init__(self, value: Value, pointer: Value):
        if not isinstance(pointer.type, PointerType):
            raise TypeError(f"store requires a pointer, got {pointer.type}")
        if pointer.type.pointee != value.type:
            raise TypeError(
                f"store type mismatch: {value.type} into {pointer.type}"
            )
        super().__init__(void, [value, pointer])

    @property
    def value(self) -> Value:
        return self.get_operand(0)

    @property
    def pointer(self) -> Value:
        return self.get_operand(1)


class GEPInst(Instruction):
    """``getelementptr`` — pointer arithmetic over arrays and structs.

    Follows LLVM semantics: the first index steps the base pointer, further
    indices descend into aggregate types.
    """

    __slots__ = ("inbounds",)
    opcode = "getelementptr"

    def __init__(
        self,
        pointer: Value,
        indices: Sequence[Value],
        name: str = "",
        inbounds: bool = False,
    ):
        if not isinstance(pointer.type, PointerType):
            raise TypeError(f"gep requires a pointer, got {pointer.type}")
        result = self._result_type(pointer.type, indices)
        super().__init__(result, [pointer, *indices], name)
        self.inbounds = inbounds

    @staticmethod
    def _result_type(ptr_type: PointerType, indices: Sequence[Value]) -> Type:
        if not indices:
            raise ValueError("gep requires at least one index")
        current: Type = ptr_type.pointee
        for idx in indices[1:]:
            if isinstance(current, ArrayType):
                current = current.element
            elif isinstance(current, StructType):
                from .values import ConstantInt

                if not isinstance(idx, ConstantInt):
                    raise TypeError("struct gep index must be a constant int")
                current = current.fields[idx.value]
            else:
                raise TypeError(f"cannot index into {current}")
        return PointerType(current)

    @property
    def pointer(self) -> Value:
        return self.get_operand(0)

    @property
    def indices(self) -> List[Value]:
        return self._operands[1:]


# ---------------------------------------------------------------------------
# Casts
# ---------------------------------------------------------------------------

CAST_OPCODES = {
    "bitcast", "inttoptr", "ptrtoint", "trunc", "zext", "sext",
    "fptosi", "sitofp", "fptrunc", "fpext", "uitofp", "fptoui",
}


class CastInst(Instruction):
    """A value-preserving or value-converting cast."""

    __slots__ = ("opcode",)

    def __init__(self, opcode: str, value: Value, to_type: Type, name: str = ""):
        if opcode not in CAST_OPCODES:
            raise ValueError(f"unknown cast opcode {opcode!r}")
        super().__init__(to_type, [value], name)
        self.opcode = opcode

    @property
    def value(self) -> Value:
        return self.get_operand(0)


# ---------------------------------------------------------------------------
# Calls
# ---------------------------------------------------------------------------


class CallInst(Instruction):
    """Direct call of a known function (or runtime symbol)."""

    __slots__ = ("callee", "is_tail")
    opcode = "call"

    def __init__(
        self,
        callee,
        args: Sequence[Value],
        name: str = "",
        tail: bool = False,
    ):
        fnty = callee.function_type
        self._check_signature(fnty, args)
        super().__init__(fnty.return_type, list(args), name)
        self.callee = callee
        self.is_tail = tail

    @staticmethod
    def _check_signature(fnty: FunctionType, args: Sequence[Value]) -> None:
        fixed = len(fnty.params)
        if fnty.vararg:
            if len(args) < fixed:
                raise TypeError(
                    f"call passes {len(args)} args, needs at least {fixed}"
                )
        elif len(args) != fixed:
            raise TypeError(f"call passes {len(args)} args, expected {fixed}")
        for i, (param, arg) in enumerate(zip(fnty.params, args)):
            if param != arg.type:
                raise TypeError(
                    f"call argument {i} type mismatch: {arg.type} vs {param}"
                )

    @property
    def args(self) -> List[Value]:
        return list(self._operands)


class IndirectCallInst(Instruction):
    """Call through a function pointer, e.g. ``call i32 %c(i8* %x, i8* %y)``."""

    __slots__ = ("is_tail",)
    opcode = "call"

    def __init__(
        self,
        callee: Value,
        args: Sequence[Value],
        name: str = "",
        tail: bool = False,
    ):
        fnty = self._callee_fnty(callee)
        CallInst._check_signature(fnty, args)
        super().__init__(fnty.return_type, [callee, *args], name)
        self.is_tail = tail

    @staticmethod
    def _callee_fnty(callee: Value) -> FunctionType:
        ty = callee.type
        if isinstance(ty, PointerType) and isinstance(ty.pointee, FunctionType):
            return ty.pointee
        raise TypeError(f"indirect call requires function pointer, got {ty}")

    @property
    def callee(self) -> Value:
        return self.get_operand(0)

    @property
    def args(self) -> List[Value]:
        return self._operands[1:]


# ---------------------------------------------------------------------------
# Speculation guards
# ---------------------------------------------------------------------------


class GuardInst(Instruction):
    """Speculation guard: ``guard i1 %cond, c"id" [ i64 %a, ... ]``.

    A pseudo-instruction marking a speculative assumption.  When the
    condition holds, execution falls through; when it fails, the runtime
    performs an OSR-exit through the deopt manager, handing it the guard
    id and the captured live values (the :class:`FrameState` keyed by
    ``guard_id`` says how to rebuild baseline state from them).

    Operand 0 is the ``i1`` condition; the remaining operands are the
    live values captured for frame-state reconstruction, in the
    deterministic liveness order of the baseline landing block.

    ``forced`` marks an *armed* guard: lowered code additionally consults
    the engine's force-failure predicate so tests and experiments can
    trigger a deopt at an exact hit count even while the semantic
    condition holds.
    """

    __slots__ = ("guard_id", "forced")
    opcode = "guard"

    def __init__(
        self,
        cond: Value,
        guard_id: str,
        live_values: Sequence[Value] = (),
        forced: bool = False,
    ):
        if cond.type != i1:
            raise TypeError(f"guard condition must be i1, got {cond.type}")
        super().__init__(void, [cond, *live_values])
        self.guard_id = guard_id
        self.forced = forced

    def has_side_effects(self) -> bool:
        # A guard observes runtime state and may transfer control to a
        # continuation — never erasable by DCE.
        return True

    @property
    def condition(self) -> Value:
        return self.get_operand(0)

    @property
    def live_values(self) -> List[Value]:
        return self._operands[1:]


# ---------------------------------------------------------------------------
# Phi
# ---------------------------------------------------------------------------


class PhiInst(Instruction):
    """SSA φ-node.  Operands are stored as value slots; the matching
    incoming block list is kept side-by-side (blocks are not operands, as
    in LLVM where blocks are a separate use list)."""

    __slots__ = ("_blocks",)
    opcode = "phi"

    def __init__(self, type: Type, name: str = ""):
        super().__init__(type, [], name)
        self._blocks: List["BasicBlock"] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        if value.type != self.type:
            raise TypeError(
                f"phi incoming type mismatch: {value.type} vs {self.type}"
            )
        self._append_operand(value)
        self._blocks.append(block)

    @property
    def incoming(self) -> List[Tuple[Value, "BasicBlock"]]:
        return list(zip(self._operands, self._blocks))

    @property
    def incoming_blocks(self) -> List["BasicBlock"]:
        return list(self._blocks)

    def incoming_value_for(self, block: "BasicBlock") -> Value:
        for value, pred in zip(self._operands, self._blocks):
            if pred is block:
                return value
        raise KeyError(f"no incoming value for block {block.name}")

    def has_incoming_for(self, block: "BasicBlock") -> bool:
        return any(pred is block for pred in self._blocks)

    def set_incoming_block(self, index: int, block: "BasicBlock") -> None:
        self._blocks[index] = block

    def remove_incoming(self, block: "BasicBlock") -> None:
        """Drop every incoming entry from ``block``."""
        keep = [
            (value, pred)
            for value, pred in zip(self._operands, self._blocks)
            if pred is not block
        ]
        while self._operands:
            self._pop_operand()
        self._blocks.clear()
        for value, pred in keep:
            self.add_incoming(value, pred)

    def replace_incoming_block(self, old: "BasicBlock", new: "BasicBlock") -> None:
        for index, pred in enumerate(self._blocks):
            if pred is old:
                self._blocks[index] = new


# ---------------------------------------------------------------------------
# Terminators
# ---------------------------------------------------------------------------


class RetInst(TerminatorInst):
    """``ret T %v`` or ``ret void``."""

    __slots__ = ()
    opcode = "ret"

    def __init__(self, value: Optional[Value] = None):
        super().__init__(void, [value] if value is not None else [])

    @property
    def value(self) -> Optional[Value]:
        return self._operands[0] if self._operands else None

    def successors(self) -> List["BasicBlock"]:
        return []


class BranchInst(TerminatorInst):
    """Unconditional branch ``br label %bb``."""

    __slots__ = ()
    opcode = "br"

    def __init__(self, target: "BasicBlock"):
        super().__init__(void, [target])

    @property
    def target(self) -> "BasicBlock":
        return self.get_operand(0)

    def successors(self) -> List["BasicBlock"]:
        return [self.target]


class CondBranchInst(TerminatorInst):
    """Conditional branch ``br i1 %c, label %t, label %f``."""

    __slots__ = ()
    opcode = "br"

    def __init__(self, cond: Value, if_true: "BasicBlock", if_false: "BasicBlock"):
        if cond.type != i1:
            raise TypeError(f"branch condition must be i1, got {cond.type}")
        super().__init__(void, [cond, if_true, if_false])

    @property
    def condition(self) -> Value:
        return self.get_operand(0)

    @property
    def true_target(self) -> "BasicBlock":
        return self.get_operand(1)

    @property
    def false_target(self) -> "BasicBlock":
        return self.get_operand(2)

    def successors(self) -> List["BasicBlock"]:
        return [self.true_target, self.false_target]


class SwitchInst(TerminatorInst):
    """``switch T %v, label %default [ T c1, label %bb1 ... ]``."""

    __slots__ = ()
    opcode = "switch"

    def __init__(
        self,
        value: Value,
        default: "BasicBlock",
        cases: Sequence[Tuple[Constant, "BasicBlock"]] = (),
    ):
        ops: List[Value] = [value, default]
        for const, block in cases:
            if const.type != value.type:
                raise TypeError("switch case type mismatch")
            ops.append(const)
            ops.append(block)
        super().__init__(void, ops)

    @property
    def value(self) -> Value:
        return self.get_operand(0)

    @property
    def default(self) -> "BasicBlock":
        return self.get_operand(1)

    @property
    def cases(self) -> List[Tuple[Constant, "BasicBlock"]]:
        out = []
        for i in range(2, len(self._operands), 2):
            out.append((self._operands[i], self._operands[i + 1]))
        return out

    def add_case(self, const: Constant, block: "BasicBlock") -> None:
        if const.type != self.value.type:
            raise TypeError("switch case type mismatch")
        self._append_operand(const)
        self._append_operand(block)

    def successors(self) -> List["BasicBlock"]:
        return [self.default] + [block for _, block in self.cases]


class UnreachableInst(TerminatorInst):
    """Marks a point that control flow can never reach."""

    __slots__ = ()
    opcode = "unreachable"

    def __init__(self):
        super().__init__(void, [])

    def successors(self) -> List["BasicBlock"]:
        return []
