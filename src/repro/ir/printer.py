"""Textual printer for the repro IR (LLVM-flavoured syntax).

The printed form round-trips through :mod:`repro.ir.parser`, which the
property-based tests rely on.  Example output::

    define i32 @isord(i64* %v, i64 %n, i32 (i8*, i8*)* %c) {
    entry:
      %t0 = icmp sgt i64 %n, 1
      br i1 %t0, label %loop.body, label %exit
    ...
    }
"""

from __future__ import annotations

from typing import List

from .function import BasicBlock, Function, Module
from .instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CondBranchInst,
    FCmpInst,
    GEPInst,
    GuardInst,
    ICmpInst,
    IndirectCallInst,
    Instruction,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from .values import (
    Argument,
    ConstantArray,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantString,
    GlobalValue,
    GlobalVariable,
    UndefValue,
    Value,
)


def value_ref(value: Value) -> str:
    """Operand reference (without type), e.g. ``%x``, ``@f``, ``42``."""
    return value.ref


def typed_ref(value: Value) -> str:
    """Operand reference with leading type, e.g. ``i64 %x``."""
    return f"{value.type} {value.ref}"


def print_instruction(inst: Instruction) -> str:
    """Render one instruction (no indentation, no trailing newline)."""
    if isinstance(inst, BinaryInst):
        flags = "".join(f" {f}" for f in inst.flags)
        return (
            f"%{inst.name} = {inst.opcode}{flags} {inst.lhs.type} "
            f"{inst.lhs.ref}, {inst.rhs.ref}"
        )
    if isinstance(inst, ICmpInst):
        return (
            f"%{inst.name} = icmp {inst.predicate} {inst.lhs.type} "
            f"{inst.lhs.ref}, {inst.rhs.ref}"
        )
    if isinstance(inst, FCmpInst):
        return (
            f"%{inst.name} = fcmp {inst.predicate} {inst.lhs.type} "
            f"{inst.lhs.ref}, {inst.rhs.ref}"
        )
    if isinstance(inst, SelectInst):
        return (
            f"%{inst.name} = select i1 {inst.condition.ref}, "
            f"{typed_ref(inst.true_value)}, {typed_ref(inst.false_value)}"
        )
    if isinstance(inst, AllocaInst):
        count = f", i64 {inst.count}" if inst.count != 1 else ""
        return f"%{inst.name} = alloca {inst.allocated_type}{count}"
    if isinstance(inst, LoadInst):
        return f"%{inst.name} = load {inst.type}, {typed_ref(inst.pointer)}"
    if isinstance(inst, StoreInst):
        return f"store {typed_ref(inst.value)}, {typed_ref(inst.pointer)}"
    if isinstance(inst, GEPInst):
        inbounds = " inbounds" if inst.inbounds else ""
        idx = ", ".join(typed_ref(i) for i in inst.indices)
        pointee = inst.pointer.type.pointee
        return (
            f"%{inst.name} = getelementptr{inbounds} {pointee}, "
            f"{typed_ref(inst.pointer)}, {idx}"
        )
    if isinstance(inst, CastInst):
        return (
            f"%{inst.name} = {inst.opcode} {typed_ref(inst.value)} "
            f"to {inst.type}"
        )
    if isinstance(inst, CallInst):
        args = ", ".join(typed_ref(a) for a in inst.args)
        tail = "tail " if inst.is_tail else ""
        callee = inst.callee.ref
        if inst.type.is_void:
            return f"{tail}call void {callee}({args})"
        return f"%{inst.name} = {tail}call {inst.type} {callee}({args})"
    if isinstance(inst, IndirectCallInst):
        args = ", ".join(typed_ref(a) for a in inst.args)
        tail = "tail " if inst.is_tail else ""
        if inst.type.is_void:
            return f"{tail}call void {inst.callee.ref}({args})"
        return f"%{inst.name} = {tail}call {inst.type} {inst.callee.ref}({args})"
    if isinstance(inst, PhiInst):
        pairs = ", ".join(
            f"[ {value.ref}, %{block.name} ]" for value, block in inst.incoming
        )
        return f"%{inst.name} = phi {inst.type} {pairs}"
    if isinstance(inst, RetInst):
        if inst.value is None:
            return "ret void"
        return f"ret {typed_ref(inst.value)}"
    if isinstance(inst, CondBranchInst):
        return (
            f"br i1 {inst.condition.ref}, label %{inst.true_target.name}, "
            f"label %{inst.false_target.name}"
        )
    if isinstance(inst, BranchInst):
        return f"br label %{inst.target.name}"
    if isinstance(inst, SwitchInst):
        cases = " ".join(
            f"{const.type} {const.ref}, label %{block.name}"
            for const, block in inst.cases
        )
        return (
            f"switch {typed_ref(inst.value)}, label %{inst.default.name} "
            f"[ {cases} ]"
        )
    if isinstance(inst, GuardInst):
        escaped = "".join(
            ch if 32 <= ord(ch) < 127 and ch not in ('"', "\\")
            else f"\\{ord(ch):02x}"
            for ch in inst.guard_id
        )
        lives = ", ".join(typed_ref(v) for v in inst.live_values)
        forced = " forced" if inst.forced else ""
        return f'guard i1 {inst.condition.ref}, c"{escaped}" [ {lives} ]{forced}'
    if isinstance(inst, UnreachableInst):
        return "unreachable"
    raise NotImplementedError(f"cannot print {type(inst).__name__}")


def print_block(block: BasicBlock) -> str:
    lines: List[str] = [f"{block.name}:"]
    for inst in block.instructions:
        lines.append(f"  {print_instruction(inst)}")
    return "\n".join(lines)


def print_function(func: Function) -> str:
    func.assign_names()
    params = ", ".join(f"{arg.type} %{arg.name}" for arg in func.args)
    if func.function_type.vararg:
        params = f"{params}, ..." if params else "..."
    header = f"{func.return_type} @{func.name}({params})"
    if func.is_declaration:
        return f"declare {header}"
    body = "\n\n".join(print_block(b) for b in func.blocks)
    return f"define {header} {{\n{body}\n}}"


def print_global(gv: GlobalVariable) -> str:
    kind = "constant" if gv.is_constant else "global"
    if gv.initializer is None:
        return f"@{gv.name} = external {kind} {gv.value_type}"
    return f"@{gv.name} = {kind} {gv.value_type} {gv.initializer.ref}"


def print_module(module: Module) -> str:
    parts: List[str] = []
    for gv in module.globals:
        parts.append(print_global(gv))
    if module.globals:
        parts.append("")
    for func in module.functions:
        parts.append(print_function(func))
        parts.append("")
    return "\n".join(parts).rstrip() + "\n"
