"""Type system for the repro IR.

The IR is typed in the style of LLVM: first-class integer, floating point,
pointer, array, struct, function and void types.  Types are immutable and
interned so that structural equality coincides with identity for the common
scalar types, which keeps type checks in the verifier and interpreter cheap.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple


class Type:
    """Base class of all IR types."""

    #: cached singletons for interned types, keyed by a structural tag
    _interned: Dict[object, "Type"] = {}

    def __eq__(self, other: object) -> bool:
        return self is other or (
            isinstance(other, Type) and self._key() == other._key()
        )

    def __hash__(self) -> int:
        return hash(self._key())

    def _key(self) -> object:
        raise NotImplementedError

    # -- convenience predicates -------------------------------------------

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_function(self) -> bool:
        return isinstance(self, FunctionType)

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self, (ArrayType, StructType))

    @property
    def is_first_class(self) -> bool:
        """First-class types may be produced by instructions and passed
        as arguments (everything except void and bare function types)."""
        return not isinstance(self, (VoidType, FunctionType))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self}>"


class VoidType(Type):
    """The type of functions that return no value."""

    def _key(self) -> object:
        return ("void",)

    def __str__(self) -> str:
        return "void"


class LabelType(Type):
    """The type of basic-block labels (only valid as branch targets)."""

    def _key(self) -> object:
        return ("label",)

    def __str__(self) -> str:
        return "label"


class IntType(Type):
    """An integer type of arbitrary bit width, e.g. ``i1``, ``i32``, ``i64``.

    Values of width ``n`` are canonically stored as Python ints in the
    signed range ``[-2**(n-1), 2**(n-1) - 1]``; wrap-around semantics are
    applied by the interpreter/JIT on arithmetic.
    """

    __slots__ = ("bits",)

    def __init__(self, bits: int):
        if bits <= 0:
            raise ValueError(f"integer bit width must be positive, got {bits}")
        self.bits = bits

    def _key(self) -> object:
        return ("int", self.bits)

    def __str__(self) -> str:
        return f"i{self.bits}"

    @property
    def min_value(self) -> int:
        """Smallest canonical value (i1 is canonically 0/1, not 0/-1)."""
        if self.bits == 1:
            return 0
        return -(1 << (self.bits - 1))

    @property
    def max_signed(self) -> int:
        if self.bits == 1:
            return 1
        return (1 << (self.bits - 1)) - 1

    @property
    def max_unsigned(self) -> int:
        return (1 << self.bits) - 1

    def wrap(self, value: int) -> int:
        """Wrap an arbitrary Python int into this type's canonical range.

        Canonical means two's-complement signed, except for ``i1`` which is
        stored as 0/1 so that boolean results read naturally.
        """
        mask = (1 << self.bits) - 1
        value &= mask
        if self.bits > 1 and value > (mask >> 1):
            value -= mask + 1
        return value

    def to_unsigned(self, value: int) -> int:
        """Reinterpret a canonical (signed) value as unsigned."""
        return value & ((1 << self.bits) - 1)


class FloatType(Type):
    """A floating-point type: ``float`` (32-bit) or ``double`` (64-bit)."""

    __slots__ = ("bits",)

    def __init__(self, bits: int):
        if bits not in (32, 64):
            raise ValueError(f"float width must be 32 or 64, got {bits}")
        self.bits = bits

    def _key(self) -> object:
        return ("float", self.bits)

    def __str__(self) -> str:
        return "float" if self.bits == 32 else "double"


class PointerType(Type):
    """A typed pointer, e.g. ``i64*`` or ``i8*``.

    Pointers in the VM are (segment, offset) handles into the runtime memory
    model, but the IR-level type carries the pointee for GEP/load/store
    type checking, like pre-opaque-pointer LLVM.
    """

    __slots__ = ("pointee",)

    def __init__(self, pointee: Type):
        if isinstance(pointee, VoidType):
            raise ValueError("cannot form pointer to void; use i8*")
        self.pointee = pointee

    def _key(self) -> object:
        return ("ptr", self.pointee._key())

    def __str__(self) -> str:
        return f"{self.pointee}*"


class ArrayType(Type):
    """A fixed-size array, e.g. ``[16 x i8]``."""

    __slots__ = ("count", "element")

    def __init__(self, count: int, element: Type):
        if count < 0:
            raise ValueError(f"array count must be non-negative, got {count}")
        if not element.is_first_class and not element.is_aggregate:
            raise ValueError(f"invalid array element type {element}")
        self.count = count
        self.element = element

    def _key(self) -> object:
        return ("array", self.count, self.element._key())

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"


class StructType(Type):
    """An anonymous structural struct type, e.g. ``{ i8*, i8*, i64 }``.

    Named (identified) structs carry a name used for printing; equality for
    named structs is by name, matching LLVM's identified struct semantics.
    """

    __slots__ = ("fields", "name")

    def __init__(self, fields: Sequence[Type], name: Optional[str] = None):
        self.fields: Tuple[Type, ...] = tuple(fields)
        self.name = name

    def _key(self) -> object:
        if self.name is not None:
            return ("struct-named", self.name)
        return ("struct", tuple(f._key() for f in self.fields))

    def __str__(self) -> str:
        if self.name is not None:
            return f"%{self.name}"
        inner = ", ".join(str(f) for f in self.fields)
        return "{ " + inner + " }"


class FunctionType(Type):
    """A function signature: return type plus parameter types."""

    __slots__ = ("return_type", "params", "vararg")

    def __init__(
        self,
        return_type: Type,
        params: Iterable[Type] = (),
        vararg: bool = False,
    ):
        self.return_type = return_type
        self.params: Tuple[Type, ...] = tuple(params)
        self.vararg = vararg
        for p in self.params:
            if not p.is_first_class:
                raise ValueError(f"invalid parameter type {p}")

    def _key(self) -> object:
        return (
            "func",
            self.return_type._key(),
            tuple(p._key() for p in self.params),
            self.vararg,
        )

    def __str__(self) -> str:
        parts = [str(p) for p in self.params]
        if self.vararg:
            parts.append("...")
        return f"{self.return_type} ({', '.join(parts)})"


# ---------------------------------------------------------------------------
# Interned common types.  Using module-level singletons keeps user code terse:
# ``from repro.ir.types import i64, ptr(i64)``.
# ---------------------------------------------------------------------------

void = VoidType()
label = LabelType()
i1 = IntType(1)
i8 = IntType(8)
i16 = IntType(16)
i32 = IntType(32)
i64 = IntType(64)
f32 = FloatType(32)
f64 = FloatType(64)


def int_type(bits: int) -> IntType:
    """Return the integer type of the given width (interned for common ones)."""
    common = {1: i1, 8: i8, 16: i16, 32: i32, 64: i64}
    return common.get(bits) or IntType(bits)


def ptr(pointee: Type) -> PointerType:
    """Shorthand for :class:`PointerType`."""
    return PointerType(pointee)


def array(count: int, element: Type) -> ArrayType:
    """Shorthand for :class:`ArrayType`."""
    return ArrayType(count, element)


def struct(*fields: Type, name: Optional[str] = None) -> StructType:
    """Shorthand for :class:`StructType`."""
    return StructType(fields, name=name)


def function(return_type: Type, *params: Type, vararg: bool = False) -> FunctionType:
    """Shorthand for :class:`FunctionType`."""
    return FunctionType(return_type, params, vararg=vararg)


def size_of(ty: Type) -> int:
    """Byte size of a type in the VM's memory model (pointers are 8 bytes)."""
    if isinstance(ty, IntType):
        return max(1, (ty.bits + 7) // 8)
    if isinstance(ty, FloatType):
        return ty.bits // 8
    if isinstance(ty, PointerType):
        return 8
    if isinstance(ty, ArrayType):
        return ty.count * size_of(ty.element)
    if isinstance(ty, StructType):
        return sum(size_of(f) for f in ty.fields)
    raise ValueError(f"type {ty} has no size")
