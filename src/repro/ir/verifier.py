"""IR verifier.

Checks the structural invariants that every well-formed function must
satisfy — the same family of checks LLVM's verifier performs.  The OSR
instrumentation passes promise to keep functions verifier-clean, and the
test suite holds them to it:

* every block has exactly one terminator, at the end;
* phis are grouped at block start and have exactly one incoming entry per
  CFG predecessor (and none for non-predecessors);
* every instruction's operands are defined in a block that dominates the
  use (SSA dominance property);
* operand types match instruction signatures (enforced structurally at
  construction, re-checked here);
* `ret` types match the function signature.
"""

from __future__ import annotations

from typing import Dict, List, Set

from .function import BasicBlock, Function, Module
from .instructions import GuardInst, Instruction, PhiInst, RetInst, TerminatorInst
from .types import i1
from .values import Argument, Constant, Value


class VerificationError(Exception):
    """Raised when a function violates an IR invariant."""

    def __init__(self, function: Function, problems: List[str]):
        self.function = function
        self.problems = problems
        details = "\n  ".join(problems)
        super().__init__(
            f"function @{function.name} failed verification:\n  {details}"
        )


def verify_function(func: Function) -> None:
    """Raise :class:`VerificationError` if the function is malformed."""
    problems = collect_problems(func)
    if problems:
        raise VerificationError(func, problems)


def verify_module(module: Module) -> None:
    for func in module.functions:
        if not func.is_declaration:
            verify_function(func)


def collect_problems(func: Function) -> List[str]:
    """Return a list of human-readable invariant violations (empty if OK)."""
    problems: List[str] = []
    if func.is_declaration:
        return problems

    blocks = func.blocks
    block_set = set(id(b) for b in blocks)

    # -- block-level structure ---------------------------------------------
    for block in blocks:
        instructions = block.instructions
        if not instructions:
            problems.append(f"block %{block.name} is empty")
            continue
        terminator = instructions[-1]
        if not terminator.is_terminator:
            problems.append(f"block %{block.name} lacks a terminator")
        for inst in instructions[:-1]:
            if inst.is_terminator:
                problems.append(
                    f"block %{block.name} has a terminator "
                    f"({inst.opcode}) before its end"
                )
        seen_non_phi = False
        for inst in instructions:
            if inst.is_phi:
                if seen_non_phi:
                    problems.append(
                        f"phi %{inst.name} in %{block.name} after non-phi"
                    )
            else:
                seen_non_phi = True
        for inst in instructions:
            if inst.parent is not block:
                problems.append(
                    f"instruction %{inst.name} has wrong parent link"
                )

    # -- successor sanity -----------------------------------------------------
    for block in blocks:
        for succ in block.successors():
            if id(succ) not in block_set:
                problems.append(
                    f"block %{block.name} branches to %{succ.name}, "
                    f"which is not in the function"
                )

    # -- phi / predecessor agreement -------------------------------------------
    preds: Dict[int, List[BasicBlock]] = {id(b): [] for b in blocks}
    for block in blocks:
        for succ in block.successors():
            if id(succ) in preds and block not in preds[id(succ)]:
                preds[id(succ)].append(block)

    for block in blocks:
        block_preds = preds[id(block)]
        for phi in block.phis:
            incoming_blocks = phi.incoming_blocks
            for pred in block_preds:
                count = sum(1 for b in incoming_blocks if b is pred)
                if count == 0:
                    problems.append(
                        f"phi %{phi.name} in %{block.name} missing incoming "
                        f"for predecessor %{pred.name}"
                    )
                elif count > 1:
                    problems.append(
                        f"phi %{phi.name} in %{block.name} has {count} "
                        f"entries for predecessor %{pred.name}"
                    )
            for b in incoming_blocks:
                if b not in block_preds:
                    problems.append(
                        f"phi %{phi.name} in %{block.name} has incoming from "
                        f"non-predecessor %{b.name}"
                    )

    # -- speculation guards ---------------------------------------------------
    for block in blocks:
        for inst in block.instructions:
            if isinstance(inst, GuardInst):
                if inst.condition.type != i1:
                    problems.append(
                        f"guard {inst.guard_id!r} in %{block.name} has "
                        f"non-i1 condition of type {inst.condition.type}"
                    )
                if not inst.guard_id:
                    problems.append(
                        f"guard in %{block.name} has an empty guard id"
                    )

    # -- return types --------------------------------------------------------------
    for block in blocks:
        term = block.terminator
        if isinstance(term, RetInst):
            if func.return_type.is_void:
                if term.value is not None:
                    problems.append(
                        f"ret with value in void function (block %{block.name})"
                    )
            else:
                if term.value is None:
                    problems.append(
                        f"ret void in non-void function (block %{block.name})"
                    )
                elif term.value.type != func.return_type:
                    problems.append(
                        f"ret type {term.value.type} != function return "
                        f"type {func.return_type}"
                    )

    # -- SSA dominance --------------------------------------------------------------
    problems.extend(_check_dominance(func, preds))
    return problems


def _check_dominance(
    func: Function, preds: Dict[int, List[BasicBlock]]
) -> List[str]:
    """Check that each use is dominated by its definition.

    Implemented directly (iterative dominator dataflow on block sets) so the
    verifier does not depend on :mod:`repro.analysis`, which itself assumes
    verified input.
    """
    problems: List[str] = []
    blocks = func.blocks
    if not blocks:
        return problems
    entry = blocks[0]

    # reachable blocks only: dominance is defined over reachable code
    reachable: Set[int] = set()
    stack = [entry]
    while stack:
        block = stack.pop()
        if id(block) in reachable:
            continue
        reachable.add(id(block))
        stack.extend(block.successors())

    index = {id(b): i for i, b in enumerate(blocks)}
    all_reachable = [b for b in blocks if id(b) in reachable]
    universe = set(id(b) for b in all_reachable)
    dom: Dict[int, Set[int]] = {id(b): set(universe) for b in all_reachable}
    dom[id(entry)] = {id(entry)}
    changed = True
    while changed:
        changed = False
        for block in all_reachable:
            if block is entry:
                continue
            pred_doms = [
                dom[id(p)] for p in preds[id(block)] if id(p) in reachable
            ]
            new = set.intersection(*pred_doms) if pred_doms else set()
            new.add(id(block))
            if new != dom[id(block)]:
                dom[id(block)] = new
                changed = True

    def defined_block(value: Value) -> BasicBlock:
        assert isinstance(value, Instruction)
        return value.parent

    positions: Dict[int, int] = {}
    for block in blocks:
        for i, inst in enumerate(block.instructions):
            positions[id(inst)] = i

    for block in all_reachable:
        for inst in block.instructions:
            operands = inst.operands
            if isinstance(inst, PhiInst):
                # a phi's operand must dominate the *end* of the matching
                # incoming block, not the phi itself
                for value, pred in inst.incoming:
                    if not isinstance(value, Instruction):
                        continue
                    if id(pred) not in reachable:
                        continue
                    def_block = defined_block(value)
                    if def_block is None or id(def_block) not in reachable:
                        problems.append(
                            f"phi %{inst.name} uses %{value.name} defined in "
                            f"unreachable/detached code"
                        )
                        continue
                    if id(def_block) not in dom[id(pred)]:
                        problems.append(
                            f"phi %{inst.name} incoming %{value.name} from "
                            f"%{pred.name} not dominated by its definition"
                        )
                continue
            for value in operands:
                if not isinstance(value, Instruction):
                    if isinstance(value, (Constant, Argument, BasicBlock)):
                        continue
                    problems.append(
                        f"%{inst.name or inst.opcode} uses non-SSA value "
                        f"{value!r}"
                    )
                    continue
                def_block = defined_block(value)
                if def_block is None:
                    problems.append(
                        f"%{inst.name or inst.opcode} uses detached "
                        f"instruction %{value.name}"
                    )
                    continue
                if id(def_block) not in reachable:
                    problems.append(
                        f"%{inst.name or inst.opcode} uses %{value.name} "
                        f"defined in unreachable block %{def_block.name}"
                    )
                    continue
                if def_block is block:
                    if positions[id(value)] >= positions[id(inst)]:
                        problems.append(
                            f"%{inst.name or inst.opcode} uses %{value.name} "
                            f"before its definition in %{block.name}"
                        )
                elif id(def_block) not in dom[id(block)]:
                    problems.append(
                        f"use of %{value.name} in %{block.name} not dominated "
                        f"by its definition in %{def_block.name}"
                    )
    return problems
