"""Core value hierarchy for the repro IR.

Everything an instruction can reference is a :class:`Value`: constants,
function arguments, instructions (whose result is the value), global
objects and basic blocks (as branch targets).  Values track their users so
that transformations such as replace-all-uses-with (RAUW), dead-code
elimination and OSR live-variable rewriting are cheap and safe.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

from .types import (
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    Type,
    i1,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from .function import BasicBlock, Function


class Value:
    """Base class of everything that can appear as an operand."""

    __slots__ = ("type", "name", "_uses")

    def __init__(self, type: Type, name: str = ""):
        self.type = type
        self.name = name
        #: list of (user, operand-index) pairs; kept in insertion order
        self._uses: List["Use"] = []

    # -- use tracking -------------------------------------------------------

    @property
    def uses(self) -> List["Use"]:
        return list(self._uses)

    @property
    def users(self) -> List["User"]:
        """Distinct users of this value in first-use order."""
        seen: Dict[int, None] = {}
        out: List[User] = []
        for use in self._uses:
            if id(use.user) not in seen:
                seen[id(use.user)] = None
                out.append(use.user)
        return out

    @property
    def num_uses(self) -> int:
        return len(self._uses)

    def is_used(self) -> bool:
        return bool(self._uses)

    def replace_all_uses_with(self, new: "Value") -> None:
        """Rewrite every use of self to use ``new`` instead (RAUW)."""
        if new is self:
            return
        for use in list(self._uses):
            use.user.set_operand(use.index, new)

    # -- display -------------------------------------------------------------

    @property
    def ref(self) -> str:
        """Printable reference, e.g. ``%x``, ``@f``, ``7``."""
        return f"%{self.name}" if self.name else "%<unnamed>"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.ref}: {self.type}>"


class Use:
    """A single (user, operand-slot) edge in the use-def graph."""

    __slots__ = ("user", "index")

    def __init__(self, user: "User", index: int):
        self.user = user
        self.index = index

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Use {self.user!r}[{self.index}]>"


class User(Value):
    """A value that references other values through operand slots."""

    __slots__ = ("_operands",)

    def __init__(self, type: Type, operands: List[Value], name: str = ""):
        super().__init__(type, name)
        self._operands: List[Value] = []
        for op in operands:
            self._append_operand(op)

    # -- operand plumbing ----------------------------------------------------

    @property
    def operands(self) -> List[Value]:
        return list(self._operands)

    @property
    def num_operands(self) -> int:
        return len(self._operands)

    def get_operand(self, index: int) -> Value:
        return self._operands[index]

    def set_operand(self, index: int, value: Value) -> None:
        old = self._operands[index]
        if old is value:
            return
        old._uses[:] = [
            u for u in old._uses if not (u.user is self and u.index == index)
        ]
        self._operands[index] = value
        value._uses.append(Use(self, index))

    def _append_operand(self, value: Value) -> None:
        index = len(self._operands)
        self._operands.append(value)
        value._uses.append(Use(self, index))

    def _pop_operand(self) -> Value:
        """Remove and return the last operand slot."""
        index = len(self._operands) - 1
        value = self._operands.pop()
        value._uses[:] = [
            u for u in value._uses if not (u.user is self and u.index == index)
        ]
        return value

    def drop_all_references(self) -> None:
        """Detach self from all operands (pre-deletion hygiene)."""
        for index, op in enumerate(self._operands):
            op._uses[:] = [
                u for u in op._uses if not (u.user is self and u.index == index)
            ]
        self._operands.clear()

    def replace_uses_of_with(self, old: Value, new: Value) -> None:
        """Replace every operand equal to ``old`` with ``new``."""
        for index, op in enumerate(self._operands):
            if op is old:
                self.set_operand(index, new)


# ---------------------------------------------------------------------------
# Constants
# ---------------------------------------------------------------------------


class Constant(Value):
    """Base class for immediate values."""

    __slots__ = ()

    def is_zero(self) -> bool:
        return False


class ConstantInt(Constant):
    """An integer immediate, stored in the type's canonical signed range."""

    __slots__ = ("value",)

    def __init__(self, type: IntType, value: int):
        if not isinstance(type, IntType):
            raise TypeError(f"ConstantInt requires an IntType, got {type}")
        super().__init__(type)
        self.value = type.wrap(int(value))

    def is_zero(self) -> bool:
        return self.value == 0

    @property
    def ref(self) -> str:
        if self.type == i1:
            return "true" if self.value else "false"
        return str(self.value)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ConstantInt {self.type} {self.value}>"


class ConstantFloat(Constant):
    """A floating-point immediate."""

    __slots__ = ("value",)

    def __init__(self, type: FloatType, value: float):
        if not isinstance(type, FloatType):
            raise TypeError(f"ConstantFloat requires a FloatType, got {type}")
        super().__init__(type)
        self.value = float(value)

    def is_zero(self) -> bool:
        return self.value == 0.0

    @property
    def ref(self) -> str:
        return repr(self.value)


class ConstantNull(Constant):
    """The null pointer of a given pointer type."""

    __slots__ = ()

    def __init__(self, type: PointerType):
        if not isinstance(type, PointerType):
            raise TypeError(f"ConstantNull requires a PointerType, got {type}")
        super().__init__(type)

    def is_zero(self) -> bool:
        return True

    @property
    def ref(self) -> str:
        return "null"


class UndefValue(Constant):
    """An unspecified value of a given type (LLVM ``undef``)."""

    __slots__ = ()

    @property
    def ref(self) -> str:
        return "undef"


class ConstantString(Constant):
    """A byte-string constant used to initialize global arrays (``c"..."``)."""

    __slots__ = ("data",)

    def __init__(self, type: Type, data: bytes):
        super().__init__(type)
        self.data = bytes(data)

    @property
    def ref(self) -> str:
        escaped = "".join(
            chr(b) if 32 <= b < 127 and b not in (34, 92) else f"\\{b:02x}"
            for b in self.data
        )
        return f'c"{escaped}"'


class ConstantArray(Constant):
    """A constant aggregate of element constants."""

    __slots__ = ("elements",)

    def __init__(self, type: Type, elements: List[Constant]):
        super().__init__(type)
        self.elements = list(elements)

    @property
    def ref(self) -> str:
        inner = ", ".join(f"{e.type} {e.ref}" for e in self.elements)
        return f"[{inner}]"


# ---------------------------------------------------------------------------
# Function-scope values
# ---------------------------------------------------------------------------


class Argument(Value):
    """A formal parameter of a function."""

    __slots__ = ("parent", "index")

    def __init__(self, type: Type, name: str, parent: "Function", index: int):
        super().__init__(type, name)
        self.parent = parent
        self.index = index


class GlobalValue(Constant):
    """Base for module-scope objects addressed by ``@name``."""

    __slots__ = ("module",)

    def __init__(self, type: Type, name: str):
        super().__init__(type, name)
        self.module = None

    @property
    def ref(self) -> str:
        return f"@{self.name}"


class GlobalVariable(GlobalValue):
    """A module-level variable; its value is a pointer to the storage."""

    __slots__ = ("value_type", "initializer", "is_constant")

    def __init__(
        self,
        value_type: Type,
        name: str,
        initializer: Optional[Constant] = None,
        is_constant: bool = False,
    ):
        super().__init__(PointerType(value_type), name)
        self.value_type = value_type
        self.initializer = initializer
        self.is_constant = is_constant

