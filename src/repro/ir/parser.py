"""Parser for the textual repro IR.

Accepts the syntax produced by :mod:`repro.ir.printer` (an LLVM-flavoured
assembly) and reconstructs a :class:`~repro.ir.function.Module`.  The
parser is two-pass within each function: block labels and instruction
results may be referenced before they are defined (phis, forward branches),
so unresolved references are recorded as placeholders and patched once the
function body has been read.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from . import types as T
from .function import BasicBlock, Function, Module
from .instructions import (
    CAST_OPCODES,
    FCMP_PREDICATES,
    FLOAT_BINOPS,
    ICMP_PREDICATES,
    INT_BINOPS,
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CondBranchInst,
    FCmpInst,
    GEPInst,
    GuardInst,
    ICmpInst,
    IndirectCallInst,
    Instruction,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from .values import (
    Constant,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantString,
    GlobalVariable,
    UndefValue,
    Value,
)


class ParseError(Exception):
    """Raised on malformed IR text, with line context."""

    def __init__(self, message: str, line: Optional[int] = None):
        self.line = line
        prefix = f"line {line}: " if line is not None else ""
        super().__init__(f"{prefix}{message}")


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t]+)
  | (?P<comment>;[^\n]*)
  | (?P<newline>\n)
  | (?P<string>c"(?:[^"\\]|\\[0-9a-fA-F]{2})*")
  | (?P<local>%[-A-Za-z0-9_.$]+)
  | (?P<globalref>@[-A-Za-z0-9_.$]+)
  | (?P<number>-?(?:\d+\.\d*(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?|\d+[eE][-+]?\d+|\d+|inf|nan))
  | (?P<ellipsis>\.\.\.)
  | (?P<punct>[(){}\[\],=*:])
  | (?P<word>[A-Za-z_][A-Za-z0-9_.]*)
    """,
    re.VERBOSE | re.ASCII,
)


class Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover
        return f"Token({self.kind}, {self.text!r})"


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    line = 1
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise ParseError(f"unexpected character {source[pos]!r}", line)
        kind = match.lastgroup or ""
        text = match.group()
        pos = match.end()
        if kind == "newline":
            line += 1
            continue
        if kind in ("ws", "comment"):
            continue
        tokens.append(Token(kind, text, line))
    tokens.append(Token("eof", "", line))
    return tokens


class _ForwardRef(Value):
    """Placeholder for a not-yet-defined local value."""

    __slots__ = ()


class Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0
        self.module = Module()
        # per-function state
        self._locals: Dict[str, Value] = {}
        self._forward: Dict[str, List[_ForwardRef]] = {}
        self._blocks: Dict[str, BasicBlock] = {}
        self._function: Optional[Function] = None

    # -- token stream helpers --------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def accept(self, text: str) -> bool:
        if self.peek().text == text:
            self.next()
            return True
        return False

    def expect(self, text: str) -> Token:
        tok = self.next()
        if tok.text != text:
            raise ParseError(f"expected {text!r}, found {tok.text!r}", tok.line)
        return tok

    def expect_kind(self, kind: str) -> Token:
        tok = self.next()
        if tok.kind != kind:
            raise ParseError(f"expected {kind}, found {tok.text!r}", tok.line)
        return tok

    # -- types -----------------------------------------------------------------

    def parse_type(self) -> T.Type:
        """Parse a type, including pointer and function-type suffixes."""
        base = self._parse_base_type()
        return self._parse_type_suffix(base)

    def _parse_base_type(self) -> T.Type:
        tok = self.peek()
        if tok.kind == "word":
            if tok.text == "void":
                self.next()
                return T.void
            if tok.text == "label":
                self.next()
                return T.label
            if tok.text in ("float", "double"):
                self.next()
                return T.f32 if tok.text == "float" else T.f64
            m = re.fullmatch(r"i(\d+)", tok.text)
            if m:
                self.next()
                return T.int_type(int(m.group(1)))
            raise ParseError(f"unknown type {tok.text!r}", tok.line)
        if tok.text == "[":
            self.next()
            count_tok = self.expect_kind("number")
            self.expect("x")
            element = self.parse_type()
            self.expect("]")
            return T.ArrayType(int(count_tok.text), element)
        if tok.text == "{":
            self.next()
            fields: List[T.Type] = []
            if self.peek().text != "}":
                fields.append(self.parse_type())
                while self.accept(","):
                    fields.append(self.parse_type())
            self.expect("}")
            return T.StructType(fields)
        raise ParseError(f"expected type, found {tok.text!r}", tok.line)

    def _parse_type_suffix(self, base: T.Type) -> T.Type:
        while True:
            tok = self.peek()
            if tok.text == "*":
                self.next()
                base = T.PointerType(base)
            elif tok.text == "(" and self._looks_like_function_type():
                self.next()
                params: List[T.Type] = []
                vararg = False
                if self.peek().text != ")":
                    while True:
                        if self.peek().kind == "ellipsis":
                            self.next()
                            vararg = True
                            break
                        params.append(self.parse_type())
                        if not self.accept(","):
                            break
                self.expect(")")
                base = T.FunctionType(base, params, vararg=vararg)
            else:
                return base

    def _looks_like_function_type(self) -> bool:
        """Disambiguate ``T (...)`` function types from call argument lists:
        a function type's parenthesis is followed by a type, ``...`` or ``)``."""
        nxt = self.peek(1)
        if nxt.text == ")" or nxt.kind == "ellipsis":
            return True
        if nxt.kind == "word":
            return (
                nxt.text in ("void", "label", "float", "double")
                or re.fullmatch(r"i\d+", nxt.text) is not None
            )
        return nxt.text in ("[", "{")

    # -- values -----------------------------------------------------------------

    def lookup_local(self, name: str, type: T.Type) -> Value:
        if name in self._locals:
            return self._locals[name]
        ref = _ForwardRef(type, name)
        self._forward.setdefault(name, []).append(ref)
        return ref

    def define_local(self, name: str, value: Value) -> None:
        if name in self._locals:
            raise ParseError(f"redefinition of %{name}")
        self._locals[name] = value
        for ref in self._forward.pop(name, []):
            ref.replace_all_uses_with(value)

    def lookup_block(self, name: str) -> BasicBlock:
        if name not in self._blocks:
            self._blocks[name] = BasicBlock(name)
        return self._blocks[name]

    def parse_value(self, type: T.Type) -> Value:
        """Parse an operand of the given expected type."""
        tok = self.peek()
        if tok.kind == "local":
            self.next()
            return self.lookup_local(tok.text[1:], type)
        if tok.kind == "globalref":
            self.next()
            return self._resolve_global(tok.text[1:], tok.line)
        if tok.kind == "number":
            self.next()
            if isinstance(type, T.FloatType):
                return ConstantFloat(type, float(tok.text))
            if isinstance(type, T.IntType):
                if "." in tok.text or "e" in tok.text or "inf" in tok.text:
                    raise ParseError(
                        f"float literal {tok.text} for integer type", tok.line
                    )
                return ConstantInt(type, int(tok.text))
            raise ParseError(f"numeric literal for type {type}", tok.line)
        if tok.text == "true":
            self.next()
            return ConstantInt(T.i1, 1)
        if tok.text == "false":
            self.next()
            return ConstantInt(T.i1, 0)
        if tok.text == "null":
            self.next()
            if not isinstance(type, T.PointerType):
                raise ParseError(f"null literal for type {type}", tok.line)
            return ConstantNull(type)
        if tok.text == "undef":
            self.next()
            return UndefValue(type)
        if tok.kind == "string":
            self.next()
            return ConstantString(type, _decode_string(tok.text))
        if tok.text == "[" and isinstance(type, T.ArrayType):
            # constant array aggregate: [ i64 1, i64 2, ... ]
            from .values import ConstantArray

            self.next()
            elements: List[Constant] = []
            if self.peek().text != "]":
                while True:
                    element_type = self.parse_type()
                    element = self.parse_value(element_type)
                    if not isinstance(element, Constant):
                        raise ParseError(
                            "array elements must be constants", tok.line
                        )
                    elements.append(element)
                    if not self.accept(","):
                        break
            self.expect("]")
            if len(elements) != type.count:
                raise ParseError(
                    f"array initializer has {len(elements)} elements, "
                    f"type wants {type.count}", tok.line,
                )
            return ConstantArray(type, elements)
        if tok.text == "inttoptr":
            # constant expression: inttoptr (i64 N to T)
            self.next()
            self.expect("(")
            src_type = self.parse_type()
            value = self.parse_value(src_type)
            self.expect("to")
            dst_type = self.parse_type()
            self.expect(")")
            if not isinstance(value, ConstantInt):
                raise ParseError("inttoptr constant expr needs int literal")
            from .constexpr import ConstantIntToPtr

            return ConstantIntToPtr(dst_type, value.value)
        raise ParseError(f"expected value, found {tok.text!r}", tok.line)

    def _resolve_global(self, name: str, line: int) -> Value:
        if self.module.has_function(name):
            return self.module.get_function(name)
        if self.module.has_global(name):
            return self.module.get_global(name)
        raise ParseError(f"unknown global @{name}", line)

    def parse_typed_value(self) -> Value:
        type = self.parse_type()
        return self.parse_value(type)

    # -- module level ---------------------------------------------------------------

    def parse_module(self) -> Module:
        # Pre-pass: register all function signatures so call references
        # resolve regardless of definition order.
        self._predeclare_functions()
        while self.peek().kind != "eof":
            tok = self.peek()
            if tok.text == "define":
                self.parse_define()
            elif tok.text == "declare":
                self.parse_declare()
            elif tok.kind == "globalref":
                self.parse_global()
            else:
                raise ParseError(
                    f"expected top-level entity, found {tok.text!r}", tok.line
                )
        return self.module

    def _predeclare_functions(self) -> None:
        saved = self.pos
        while self.peek().kind != "eof":
            tok = self.peek()
            if tok.text in ("define", "declare"):
                self.next()
                ret = self.parse_type()
                name_tok = self.expect_kind("globalref")
                params, names, vararg = self._parse_param_list()
                fnty = T.FunctionType(ret, params, vararg=vararg)
                if not self.module.has_function(name_tok.text[1:]):
                    self.module.add_function(
                        Function(fnty, name_tok.text[1:], names)
                    )
                # skip body if present
                if self.peek().text == "{":
                    depth = 0
                    while True:
                        t = self.next()
                        if t.text == "{":
                            depth += 1
                        elif t.text == "}":
                            depth -= 1
                            if depth == 0:
                                break
                        elif t.kind == "eof":
                            raise ParseError("unterminated function body")
            else:
                self.next()
        self.pos = saved

    def _parse_param_list(self) -> Tuple[List[T.Type], List[str], bool]:
        self.expect("(")
        params: List[T.Type] = []
        names: List[str] = []
        vararg = False
        if self.peek().text != ")":
            while True:
                if self.peek().kind == "ellipsis":
                    self.next()
                    vararg = True
                    break
                params.append(self.parse_type())
                # skip parameter attributes
                while self.peek().kind == "word" and self.peek().text in (
                    "nocapture", "readonly", "noalias", "readnone",
                ):
                    self.next()
                if self.peek().kind == "local":
                    names.append(self.next().text[1:])
                else:
                    names.append(f"arg{len(params) - 1}")
                if not self.accept(","):
                    break
        self.expect(")")
        return params, names, vararg

    def parse_global(self) -> None:
        name_tok = self.expect_kind("globalref")
        self.expect("=")
        external = self.accept("external")
        tok = self.next()
        if tok.text not in ("global", "constant"):
            raise ParseError(
                f"expected 'global' or 'constant', found {tok.text!r}", tok.line
            )
        is_constant = tok.text == "constant"
        value_type = self.parse_type()
        initializer: Optional[Constant] = None
        if not external:
            value = self.parse_value(value_type)
            if not isinstance(value, Constant):
                raise ParseError("global initializer must be constant")
            initializer = value
        gv = GlobalVariable(value_type, name_tok.text[1:], initializer, is_constant)
        if not self.module.has_global(gv.name):
            self.module.add_global(gv)

    def parse_declare(self) -> None:
        self.expect("declare")
        self.parse_type()
        self.expect_kind("globalref")
        self._parse_param_list()
        # signature was registered by the pre-pass

    def parse_define(self) -> None:
        self.expect("define")
        self.parse_type()
        name_tok = self.expect_kind("globalref")
        self._parse_param_list()
        func = self.module.get_function(name_tok.text[1:])
        self._function = func
        self._locals = {arg.name: arg for arg in func.args}
        self._forward = {}
        self._blocks = {}
        self.expect("{")
        current: Optional[BasicBlock] = None
        while self.peek().text != "}":
            tok = self.peek()
            if tok.kind == "word" and self.peek(1).text == ":":
                block = self.lookup_block(tok.text)
                func.add_block(block)
                self.next()
                self.next()
                current = block
            else:
                if current is None:
                    raise ParseError("instruction outside a block", tok.line)
                self.parse_instruction(current)
        self.expect("}")
        if self._forward:
            missing = ", ".join(f"%{n}" for n in self._forward)
            raise ParseError(f"undefined values in @{func.name}: {missing}")
        for block in self._blocks.values():
            if block.parent is None:
                raise ParseError(
                    f"branch to undefined block %{block.name} in @{func.name}"
                )
        self._function = None

    # -- instructions -------------------------------------------------------------

    def parse_instruction(self, block: BasicBlock) -> Instruction:
        tok = self.peek()
        name = ""
        if tok.kind == "local":
            name = self.next().text[1:]
            self.expect("=")
        inst = self._parse_instruction_body(name)
        block.append(inst)
        if name:
            self.define_local(name, inst)
        return inst

    def _parse_instruction_body(self, name: str) -> Instruction:
        tok = self.next()
        op = tok.text
        tail = False
        if op == "tail":
            tail = True
            tok = self.next()
            op = tok.text

        if op in INT_BINOPS or op in FLOAT_BINOPS:
            flags: List[str] = []
            while self.peek().text in ("nsw", "nuw", "exact"):
                flags.append(self.next().text)
            type = self.parse_type()
            lhs = self.parse_value(type)
            self.expect(",")
            rhs = self.parse_value(type)
            return BinaryInst(op, lhs, rhs, name, flags)

        if op == "icmp":
            pred = self.next().text
            if pred not in ICMP_PREDICATES:
                raise ParseError(f"bad icmp predicate {pred!r}", tok.line)
            type = self.parse_type()
            lhs = self.parse_value(type)
            self.expect(",")
            rhs = self.parse_value(type)
            return ICmpInst(pred, lhs, rhs, name)

        if op == "fcmp":
            pred = self.next().text
            if pred not in FCMP_PREDICATES:
                raise ParseError(f"bad fcmp predicate {pred!r}", tok.line)
            type = self.parse_type()
            lhs = self.parse_value(type)
            self.expect(",")
            rhs = self.parse_value(type)
            return FCmpInst(pred, lhs, rhs, name)

        if op == "select":
            self.expect("i1")
            cond = self.parse_value(T.i1)
            self.expect(",")
            if_true = self.parse_typed_value()
            self.expect(",")
            if_false = self.parse_typed_value()
            return SelectInst(cond, if_true, if_false, name)

        if op == "alloca":
            type = self.parse_type()
            count = 1
            if self.accept(","):
                self.expect("i64")
                count = int(self.expect_kind("number").text)
            return AllocaInst(type, name, count)

        if op == "load":
            self.parse_type()  # result type (redundant)
            self.expect(",")
            pointer = self.parse_typed_value()
            return LoadInst(pointer, name)

        if op == "store":
            value = self.parse_typed_value()
            self.expect(",")
            pointer = self.parse_typed_value()
            return StoreInst(value, pointer)

        if op == "getelementptr":
            inbounds = self.accept("inbounds")
            self.parse_type()  # pointee type (redundant)
            self.expect(",")
            pointer = self.parse_typed_value()
            indices: List[Value] = []
            while self.accept(","):
                indices.append(self.parse_typed_value())
            return GEPInst(pointer, indices, name, inbounds)

        if op in CAST_OPCODES:
            value = self.parse_typed_value()
            self.expect("to")
            to_type = self.parse_type()
            return CastInst(op, value, to_type, name)

        if op == "call":
            return self._parse_call(name, tail)

        if op == "phi":
            type = self.parse_type()
            phi = PhiInst(type, name)
            pairs: List[Tuple[Value, BasicBlock]] = []
            while True:
                self.expect("[")
                value = self.parse_value(type)
                self.expect(",")
                block_tok = self.expect_kind("local")
                self.expect("]")
                pairs.append((value, self.lookup_block(block_tok.text[1:])))
                if not self.accept(","):
                    break
            for value, pred in pairs:
                phi.add_incoming(value, pred)
            return phi

        if op == "ret":
            if self.peek().text == "void":
                self.next()
                return RetInst(None)
            return RetInst(self.parse_typed_value())

        if op == "br":
            if self.peek().text == "label":
                self.next()
                target_tok = self.expect_kind("local")
                return BranchInst(self.lookup_block(target_tok.text[1:]))
            self.expect("i1")
            cond = self.parse_value(T.i1)
            self.expect(",")
            self.expect("label")
            true_tok = self.expect_kind("local")
            self.expect(",")
            self.expect("label")
            false_tok = self.expect_kind("local")
            return CondBranchInst(
                cond,
                self.lookup_block(true_tok.text[1:]),
                self.lookup_block(false_tok.text[1:]),
            )

        if op == "switch":
            value = self.parse_typed_value()
            self.expect(",")
            self.expect("label")
            default_tok = self.expect_kind("local")
            inst = SwitchInst(value, self.lookup_block(default_tok.text[1:]))
            self.expect("[")
            while self.peek().text != "]":
                case_type = self.parse_type()
                case_value = self.parse_value(case_type)
                if not isinstance(case_value, Constant):
                    raise ParseError("switch case must be constant")
                self.expect(",")
                self.expect("label")
                case_tok = self.expect_kind("local")
                inst.add_case(case_value, self.lookup_block(case_tok.text[1:]))
            self.expect("]")
            return inst

        if op == "guard":
            self.expect("i1")
            cond = self.parse_value(T.i1)
            self.expect(",")
            gid_tok = self.expect_kind("string")
            guard_id = _decode_string(gid_tok.text).decode("latin-1")
            self.expect("[")
            lives: List[Value] = []
            if self.peek().text != "]":
                while True:
                    lives.append(self.parse_typed_value())
                    if not self.accept(","):
                        break
            self.expect("]")
            forced = self.accept("forced")
            return GuardInst(cond, guard_id, lives, forced)

        if op == "unreachable":
            return UnreachableInst()

        raise ParseError(f"unknown instruction {op!r}", tok.line)

    def _parse_call(self, name: str, tail: bool) -> Instruction:
        self.parse_type()  # return type (redundant with callee signature)
        callee_tok = self.next()
        if callee_tok.kind == "globalref":
            callee = self._resolve_global(callee_tok.text[1:], callee_tok.line)
            args = self._parse_call_args()
            return CallInst(callee, args, name, tail)
        if callee_tok.kind == "local":
            # indirect call through a local function pointer; its type must
            # already be known (defined earlier or an argument)
            local_name = callee_tok.text[1:]
            if local_name not in self._locals:
                raise ParseError(
                    f"indirect callee %{local_name} must be defined before use",
                    callee_tok.line,
                )
            callee_value = self._locals[local_name]
            args = self._parse_call_args()
            return IndirectCallInst(callee_value, args, name, tail)
        raise ParseError(f"bad call callee {callee_tok.text!r}", callee_tok.line)

    def _parse_call_args(self) -> List[Value]:
        self.expect("(")
        args: List[Value] = []
        if self.peek().text != ")":
            while True:
                args.append(self.parse_typed_value())
                if not self.accept(","):
                    break
        self.expect(")")
        return args


def _decode_string(token_text: str) -> bytes:
    """Decode a ``c"..."`` literal with ``\\XX`` hex escapes."""
    body = token_text[2:-1]
    out = bytearray()
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            out.append(int(body[i + 1 : i + 3], 16))
            i += 3
        else:
            out.append(ord(ch))
            i += 1
    return bytes(out)


def parse_module(source: str) -> Module:
    """Parse IR text into a module."""
    return Parser(source).parse_module()


def parse_function(source: str, module: Optional[Module] = None) -> Function:
    """Parse a single ``define`` and return the function.

    If ``module`` is given, declarations and globals it already holds are
    visible to the parsed body, and the new function is added to it.
    """
    parser = Parser(source)
    if module is not None:
        parser.module = module
    before = set()
    if module is not None:
        before = {f.name for f in module.functions}
    parsed = parser.parse_module()
    defined = [
        f for f in parsed.functions
        if not f.is_declaration and f.name not in before
    ]
    if len(defined) != 1:
        raise ParseError(
            f"expected exactly one new function definition, found {len(defined)}"
        )
    return defined[0]
