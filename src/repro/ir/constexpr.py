"""Constant expressions.

The only constant expression the OSR machinery needs is ``inttoptr``:
open-OSR stubs hard-wire run-time addresses (of the code generator, the
base function's IR object, the OSR basic block, ...) into the IR exactly
as the paper's Figure 6 shows::

    i8* inttoptr (i64 46993664 to i8*)

In our VM these integers are handles into the execution engine's object
table rather than raw machine addresses, but the IR shape is the same.
"""

from __future__ import annotations

from .types import Type
from .values import Constant


class ConstantIntToPtr(Constant):
    """``inttoptr (i64 <value> to <type>)`` — an address baked into the IR."""

    __slots__ = ("value",)

    def __init__(self, type: Type, value: int):
        if not type.is_pointer:
            raise TypeError(f"inttoptr target must be a pointer, got {type}")
        super().__init__(type)
        self.value = int(value)

    @property
    def ref(self) -> str:
        return f"inttoptr (i64 {self.value} to {self.type})"

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ConstantIntToPtr {self.value} to {self.type}>"
