"""Basic blocks, functions, and modules.

A :class:`Function` owns an ordered list of :class:`BasicBlock`; each block
owns an ordered list of instructions ending in exactly one terminator.
Blocks are themselves :class:`~repro.ir.values.Value` (of label type) so
branch instructions reference them through ordinary operand slots, which
lets CFG edits reuse the use-def machinery.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .instructions import Instruction, PhiInst, TerminatorInst
from .types import FunctionType, PointerType, Type, label
from .values import Argument, GlobalValue, GlobalVariable, Value


class BasicBlock(Value):
    """A straight-line sequence of instructions with a single terminator."""

    __slots__ = ("parent", "_instructions")

    def __init__(self, name: str = "", parent: Optional["Function"] = None):
        super().__init__(label, name)
        self.parent = parent
        self._instructions: List[Instruction] = []
        if parent is not None:
            parent.add_block(self)

    # -- instruction list ----------------------------------------------------

    @property
    def instructions(self) -> List[Instruction]:
        return list(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(list(self._instructions))

    def __len__(self) -> int:
        return len(self._instructions)

    def append(self, inst: Instruction) -> Instruction:
        if self._instructions and self._instructions[-1].is_terminator:
            raise ValueError(
                f"block {self.name!r} is already terminated; "
                f"cannot append {inst.opcode}"
            )
        self._instructions.append(inst)
        inst.parent = self
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        self._instructions.insert(index, inst)
        inst.parent = self
        return inst

    def insert_before_terminator(self, inst: Instruction) -> Instruction:
        """Insert just before the terminator (block must be terminated)."""
        if not self.is_terminated:
            raise ValueError(f"block {self.name!r} has no terminator")
        return self.insert(len(self._instructions) - 1, inst)

    def remove(self, inst: Instruction) -> None:
        self._instructions.remove(inst)
        inst.parent = None

    @property
    def terminator(self) -> Optional[TerminatorInst]:
        if self._instructions and self._instructions[-1].is_terminator:
            return self._instructions[-1]  # type: ignore[return-value]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    @property
    def phis(self) -> List[PhiInst]:
        out = []
        for inst in self._instructions:
            if not inst.is_phi:
                break
            out.append(inst)
        return out

    @property
    def first_non_phi_index(self) -> int:
        for index, inst in enumerate(self._instructions):
            if not inst.is_phi:
                return index
        return len(self._instructions)

    # -- CFG -----------------------------------------------------------------

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        return term.successors() if term is not None else []

    def predecessors(self) -> List["BasicBlock"]:
        """Blocks whose terminator targets this block, in stable order."""
        preds: List[BasicBlock] = []
        seen = set()
        for use in self._uses:
            user = use.user
            if isinstance(user, TerminatorInst) and user.parent is not None:
                pred = user.parent
                if id(pred) not in seen:
                    seen.add(id(pred))
                    preds.append(pred)
        return preds

    def erase_from_parent(self) -> None:
        """Remove this block and drop all its instructions' references."""
        for inst in list(self._instructions):
            inst.erase_from_parent()
        if self.parent is not None:
            self.parent.remove_block(self)

    @property
    def ref(self) -> str:
        return f"%{self.name}" if self.name else "%<block>"

    def __repr__(self) -> str:  # pragma: no cover
        return f"<BasicBlock {self.name!r} ({len(self._instructions)} insts)>"


class Function(GlobalValue):
    """An IR function: a signature plus a list of basic blocks.

    Functions are global values whose *value* type is a pointer to the
    function type, so taking the address of a function (for indirect calls,
    as OSR stubs do) needs no special casing.
    """

    __slots__ = ("function_type", "args", "_blocks", "attributes",
                 "_code_version", "_cached_code")

    def __init__(self, function_type: FunctionType, name: str,
                 arg_names: Optional[Sequence[str]] = None):
        super().__init__(PointerType(function_type), name)
        self.function_type = function_type
        names = list(arg_names) if arg_names is not None else [
            f"arg{i}" for i in range(len(function_type.params))
        ]
        if len(names) != len(function_type.params):
            raise ValueError("argument name count mismatch")
        self.args: List[Argument] = [
            Argument(ty, nm, self, i)
            for i, (ty, nm) in enumerate(zip(function_type.params, names))
        ]
        self._blocks: List[BasicBlock] = []
        #: free-form attribute set ('nocapture', 'readonly', ...)
        self.attributes: Dict[str, object] = {}
        #: monotonically increasing stamp bumped whenever the body is
        #: rewritten (transform passes, OSR instrumentation); execution
        #: tiers key their caches on it
        self._code_version: int = 0
        #: cached tier artifacts (see repro.vm.jit.CompiledCode); validated
        #: against (code_version, code_shape) before reuse
        self._cached_code = None

    # -- declarations vs definitions ------------------------------------------

    @property
    def is_declaration(self) -> bool:
        return not self._blocks

    @property
    def return_type(self) -> Type:
        return self.function_type.return_type

    # -- block list ------------------------------------------------------------

    @property
    def blocks(self) -> List[BasicBlock]:
        return list(self._blocks)

    @property
    def entry(self) -> BasicBlock:
        if not self._blocks:
            raise ValueError(f"function {self.name!r} has no blocks")
        return self._blocks[0]

    def add_block(self, block: BasicBlock, after: Optional[BasicBlock] = None
                  ) -> BasicBlock:
        block.parent = self
        if after is None:
            self._blocks.append(block)
        else:
            self._blocks.insert(self._blocks.index(after) + 1, block)
        return block

    def insert_block_front(self, block: BasicBlock) -> BasicBlock:
        """Make ``block`` the new entry block."""
        block.parent = self
        self._blocks.insert(0, block)
        return block

    def remove_block(self, block: BasicBlock) -> None:
        self._blocks.remove(block)
        block.parent = None

    def get_block(self, name: str) -> BasicBlock:
        for block in self._blocks:
            if block.name == name:
                return block
        raise KeyError(f"no block named {name!r} in @{self.name}")

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(list(self._blocks))

    # -- whole-function iteration ----------------------------------------------

    def instructions(self) -> Iterator[Instruction]:
        for block in self._blocks:
            yield from block.instructions

    @property
    def instruction_count(self) -> int:
        return sum(len(b) for b in self._blocks)

    # -- code versioning ---------------------------------------------------------

    @property
    def code_version(self) -> int:
        """Version stamp for compiled-code caches.

        Bumped by :meth:`bump_code_version` whenever the body is rewritten
        (pass pipelines, OSR instrumentation, engine invalidation).  Tiers
        cache decoded/compiled artifacts keyed on this stamp.
        """
        return self._code_version

    def bump_code_version(self) -> int:
        self._code_version += 1
        return self._code_version

    def code_shape(self) -> Tuple[int, int]:
        """A cheap structural fingerprint: (block count, instruction count).

        Used alongside :attr:`code_version` to invalidate cached code when
        a pass mutated the body without bumping the version explicitly.
        """
        return (len(self._blocks), sum(len(b) for b in self._blocks))

    # -- naming hygiene ----------------------------------------------------------

    def assign_names(self, prefix: str = "t") -> None:
        """Give unique names to unnamed values and deduplicate block names.

        Run before printing or JIT-compiling so every value has a stable,
        unique identifier.
        """
        taken = {arg.name for arg in self.args}
        counter = 0

        def fresh(base: str) -> str:
            nonlocal counter
            candidate = base
            while candidate in taken or not candidate:
                candidate = f"{base}{counter}" if base != prefix else f"{prefix}{counter}"
                counter += 1
            taken.add(candidate)
            return candidate

        for index, block in enumerate(self._blocks):
            if not block.name:
                block.name = f"bb{index}"

        block_names = set()
        for block in self._blocks:
            if block.name in block_names:
                base = block.name
                suffix = 1
                while f"{base}.{suffix}" in block_names:
                    suffix += 1
                block.name = f"{base}.{suffix}"
            block_names.add(block.name)

        for inst in self.instructions():
            if inst.type.is_void:
                continue
            if not inst.name or inst.name in taken:
                inst.name = fresh(inst.name or prefix)
            else:
                taken.add(inst.name)

    def __repr__(self) -> str:  # pragma: no cover
        kind = "declare" if self.is_declaration else "define"
        return f"<Function {kind} @{self.name}>"


class Module:
    """A compilation unit: functions plus global variables."""

    def __init__(self, name: str = "module"):
        self.name = name
        self._functions: Dict[str, Function] = {}
        self._globals: Dict[str, GlobalVariable] = {}

    # -- functions ---------------------------------------------------------------

    @property
    def functions(self) -> List[Function]:
        return list(self._functions.values())

    def add_function(self, func: Function) -> Function:
        if func.name in self._functions:
            raise ValueError(f"duplicate function @{func.name}")
        self._functions[func.name] = func
        func.module = self
        return func

    def get_function(self, name: str) -> Function:
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError(f"no function @{name} in module {self.name!r}") from None

    def has_function(self, name: str) -> bool:
        return name in self._functions

    def remove_function(self, func: Function) -> None:
        del self._functions[func.name]
        func.module = None

    def declare_function(self, name: str, function_type: FunctionType) -> Function:
        """Get-or-create a declaration with the given signature."""
        if name in self._functions:
            existing = self._functions[name]
            if existing.function_type != function_type:
                raise TypeError(
                    f"redeclaration of @{name} with different type"
                )
            return existing
        return self.add_function(Function(function_type, name))

    def unique_name(self, base: str) -> str:
        """Return a function name not yet present in the module."""
        if base not in self._functions:
            return base
        suffix = 1
        while f"{base}.{suffix}" in self._functions:
            suffix += 1
        return f"{base}.{suffix}"

    # -- globals -------------------------------------------------------------------

    @property
    def globals(self) -> List[GlobalVariable]:
        return list(self._globals.values())

    def add_global(self, gv: GlobalVariable) -> GlobalVariable:
        if gv.name in self._globals:
            raise ValueError(f"duplicate global @{gv.name}")
        self._globals[gv.name] = gv
        gv.module = self
        return gv

    def get_global(self, name: str) -> GlobalVariable:
        try:
            return self._globals[name]
        except KeyError:
            raise KeyError(f"no global @{name} in module {self.name!r}") from None

    def has_global(self, name: str) -> bool:
        return name in self._globals

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Module {self.name!r}: {len(self._functions)} functions, "
            f"{len(self._globals)} globals>"
        )
