"""repro.ir — a typed SSA intermediate representation.

This package is the LLVM-IR substitute for the OSRKit reproduction: a
compact, verifiable SSA IR with the instruction vocabulary the paper's
machinery manipulates (phis, branches, calls, memory ops, casts), plus a
builder, a textual printer/parser pair, and a verifier.
"""

from . import types
from .builder import IRBuilder
from .constexpr import ConstantIntToPtr
from .function import BasicBlock, Function, Module
from .instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CondBranchInst,
    FCmpInst,
    GEPInst,
    GuardInst,
    ICmpInst,
    IndirectCallInst,
    Instruction,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    TerminatorInst,
    UnreachableInst,
)
from .parser import ParseError, parse_function, parse_module
from .printer import print_function, print_instruction, print_module
from .values import (
    Argument,
    Constant,
    ConstantArray,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantString,
    GlobalValue,
    GlobalVariable,
    UndefValue,
    Use,
    User,
    Value,
)
from .verifier import VerificationError, verify_function, verify_module

__all__ = [
    "types",
    "IRBuilder",
    "BasicBlock",
    "Function",
    "Module",
    "Instruction",
    "TerminatorInst",
    "AllocaInst",
    "BinaryInst",
    "BranchInst",
    "CallInst",
    "CastInst",
    "CondBranchInst",
    "FCmpInst",
    "GEPInst",
    "GuardInst",
    "ICmpInst",
    "IndirectCallInst",
    "LoadInst",
    "PhiInst",
    "RetInst",
    "SelectInst",
    "StoreInst",
    "SwitchInst",
    "UnreachableInst",
    "Value",
    "User",
    "Use",
    "Constant",
    "ConstantInt",
    "ConstantFloat",
    "ConstantNull",
    "ConstantString",
    "ConstantArray",
    "ConstantIntToPtr",
    "UndefValue",
    "Argument",
    "GlobalValue",
    "GlobalVariable",
    "parse_module",
    "parse_function",
    "ParseError",
    "print_module",
    "print_function",
    "print_instruction",
    "verify_function",
    "verify_module",
    "VerificationError",
]
