"""Per-guard frame state: how to rebuild baseline live state on deopt.

Each ``guard`` inserted by the speculation pass owns a :class:`FrameState`
record describing the OSR-*exit* side of the guard: which baseline
function to resume, at which block, and which baseline values the guard's
captured live operands correspond to (positionally).  On guard failure
the deopt manager feeds these into the paper's continuation machinery —
the guard's runtime live values become the continuation's parameters and
a :class:`~repro.core.statemap.StateMapping` (identity for the baseline,
derived via :mod:`repro.core.autostate` for sibling specializations)
drives the compensation code in ``osr.entry``.
"""

from __future__ import annotations

from typing import List

from ..core.statemap import StateMapping
from ..ir.function import BasicBlock, Function
from ..ir.values import Value


class FrameState:
    """Deopt metadata for one guard.

    ``live_values`` are *baseline* values in the guard's capture order:
    the deterministic liveness order of ``landing`` followed by the
    speculated argument (always captured last, so the deopt manager can
    read the observed value that failed the guard without re-entering
    the speculative frame).
    """

    __slots__ = ("guard_id", "baseline", "landing", "live_values",
                 "arg_index")

    def __init__(self, guard_id: str, baseline: Function,
                 landing: BasicBlock, live_values: List[Value],
                 arg_index: int):
        self.guard_id = guard_id
        self.baseline = baseline
        self.landing = landing
        self.live_values = list(live_values)
        #: which baseline argument the owning version speculates on
        self.arg_index = arg_index

    @property
    def state_size(self) -> int:
        """Width of the deopt recipe: how many values the guard captures
        and the exit continuation receives.  Scalarization shrinks this —
        an aggregate's pointer live across the guard becomes N scratch
        scalars that are dead at the guard, or nothing at all."""
        return len(self.live_values)

    def baseline_mapping(self) -> StateMapping:
        """Identity mapping: live value ``i`` arrives as parameter ``i``.

        Valid because the captured operands are the 1:1 clones of the
        baseline live set — resuming the baseline needs no compensation
        beyond the parameter transfer itself.
        """
        return StateMapping.identity(self.live_values)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<FrameState {self.guard_id!r} -> @{self.baseline.name}"
            f":%{self.landing.name} lives={len(self.live_values)}>"
        )
