"""repro.spec — speculation & deoptimization above the OSR kit.

Guarded fast paths: the speculation pass clones a function under
profile-driven value assumptions protected by ``guard`` instructions
(:mod:`repro.spec.speculate`); on guard failure the deopt manager
OSR-exits through the paper's continuation machinery, reconstructing the
baseline's live frame state mid-flight (:mod:`repro.spec.deopt`,
:mod:`repro.spec.framestate`); repeated failures with new stable
profiles dispatch among additional specialized continuations, bounded by
a thrash limit (:mod:`repro.spec.manager`) — the Deoptless design built
on D'Elia & Demetrescu's OSR substrate.
"""

from .deopt import DeoptError, DeoptManager
from .framestate import FrameState
from .manager import (
    DEFAULT_STREAK_THRESHOLD,
    DEFAULT_THRASH_LIMIT,
    SpecState,
    SpeculationManager,
)
from .speculate import (
    SpecializedVersion,
    SpeculationError,
    specialize_function,
)

__all__ = [
    "DeoptError",
    "DeoptManager",
    "FrameState",
    "SpecState",
    "SpeculationManager",
    "SpecializedVersion",
    "SpeculationError",
    "specialize_function",
    "DEFAULT_STREAK_THRESHOLD",
    "DEFAULT_THRASH_LIMIT",
]
