"""The deopt manager: OSR-exit from speculative code.

When a guard fails, lowered code (or the interpreter) calls
``engine.deopt_exit(guard_id, lives)``, which lands here.  The manager:

1. looks up the guard's :class:`~repro.spec.framestate.FrameState`;
2. asks the speculation manager whether the failure should *dispatch* to
   a sibling specialization (Deoptless-style: the observed value matches
   another version's speculation, or a new stable profile earned a fresh
   one) — if so, the exit continues in a *specialized continuation* of
   that sibling, with the state mapping derived automatically through
   the sibling's clone map (:mod:`repro.core.autostate`);
3. otherwise resumes the *baseline* mid-flight through a continuation
   generated with the identity mapping — execution picks up at the
   guard's landing block with the captured live state, never restarting
   the function from its entry.

Continuations are generated once per (guard, target) and cached; a warm
deopt is a cache lookup plus one call.  Guards can also be *armed* to
fail on a chosen hit count (:meth:`DeoptManager.force_failure`), which
the differential tests use to inject deopts at arbitrary points.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from ..core.autostate import AutoStateError, derive_state_mapping
from ..core.continuation import OSRError, generate_continuation
from ..ir.function import Function
from ..ir.instructions import GuardInst
from ..obs import events as EV
from ..obs.telemetry import ambient as ambient_telemetry
from ..vm.interpreter import Trap
from ..vm.jit import compile_function
from .framestate import FrameState
from .speculate import SpecializedVersion


class DeoptError(Exception):
    """Raised when a deopt exit cannot be carried out."""


class DeoptManager:
    """Per-engine deopt coordinator: frame states, continuations, forcing."""

    def __init__(self, engine, telemetry=None):
        self.engine = engine
        self.telemetry = (telemetry if telemetry is not None
                          else engine.telemetry)
        #: guard id -> frame state
        self._frames: Dict[str, FrameState] = {}
        #: guard id -> owning specialized version
        self._owners: Dict[str, SpecializedVersion] = {}
        #: (guard id, target function name) -> compiled continuation
        self._continuations: Dict[tuple, Callable] = {}
        #: guard id -> {"at": hit index to fail on, "hits": observed so far}
        self._forced: Dict[str, Dict[str, int]] = {}
        #: wired by the SpeculationManager
        self.spec_manager = None
        #: total deopt exits taken (cheap census for benchmarks)
        self.deopt_count = 0

    # -- registration ---------------------------------------------------------

    def register_version(self, version: SpecializedVersion) -> None:
        for guard_id, frame in version.guards.items():
            self._frames[guard_id] = frame
            self._owners[guard_id] = version

    def forget_version(self, version: SpecializedVersion) -> None:
        for guard_id in version.guards:
            self._frames.pop(guard_id, None)
            self._owners.pop(guard_id, None)
            self._forced.pop(guard_id, None)
            self._continuations = {
                key: cont for key, cont in self._continuations.items()
                if key[0] != guard_id
            }

    def frame_for(self, guard_id: str) -> Optional[FrameState]:
        return self._frames.get(guard_id)

    # -- forced failures -------------------------------------------------------

    def force_failure(self, guard_id: str, at_hit: int = 1) -> None:
        """Arm ``guard_id`` to fail on its ``at_hit``-th execution (and
        every one after), even while its semantic condition holds.

        Arming sets the guard instruction's ``forced`` flag and drops the
        owner's compiled form, so the next materialization lowers the
        force check into the guard — unarmed guards never pay for it.
        """
        if guard_id not in self._frames:
            raise DeoptError(f"unknown guard {guard_id!r}")
        if at_hit < 1:
            raise DeoptError("at_hit must be >= 1")
        self._forced[guard_id] = {"at": at_hit, "hits": 0}
        owner = self._owners.get(guard_id)
        if owner is not None:
            armed = False
            for block in owner.function.blocks:
                for inst in block.instructions:
                    if isinstance(inst, GuardInst) and inst.guard_id == guard_id:
                        if not inst.forced:
                            inst.forced = True
                            armed = True
            if armed:
                owner.function.bump_code_version()
                self.engine._compiled.pop(owner.function.name, None)
                if self.spec_manager is not None:
                    self.spec_manager.refresh_active(owner)

    def should_force(self, guard_id: str) -> bool:
        """Hit-count check consulted by armed guards (fast path: guards
        that were never armed do not call this at all)."""
        state = self._forced.get(guard_id)
        if state is None:
            return False
        state["hits"] += 1
        return state["hits"] >= state["at"]

    # -- the exit path ---------------------------------------------------------

    def entry(self, guard_id: str, lives: List) -> object:
        """Perform the OSR-exit for a failed guard; returns the final
        return value of the resumed execution.

        The *transition cost* — everything between the guard failing
        and the continuation being ready to run (policy consultation,
        continuation generation or cache lookup) — folds into the
        histogram-backed ``deopt.transition`` timer, so warm/cold deopt
        tails are visible as ``p50`` vs ``p99``.
        """
        transition_start = time.perf_counter()
        frame = self._frames.get(guard_id)
        if frame is None:
            raise Trap(f"deopt exit for unknown guard {guard_id!r}")
        self.deopt_count += 1
        tel = self.telemetry
        metrics = getattr(self.engine, "metrics", None)
        if tel.enabled:
            tel.event(EV.DEOPT_GUARD_FAIL, guard=guard_id,
                      function=frame.baseline.name)
        elif metrics is not None:
            metrics.inc(EV.DEOPT_GUARD_FAIL)
        if metrics is not None:
            # the deopt-recipe width actually transferred on this exit
            metrics.gauge(EV.OSR_LIVE_SLOTS, len(lives))

        observed = lives[-1] if lives else None
        owner = self._owners.get(guard_id)
        target: Optional[SpecializedVersion] = None
        if self.spec_manager is not None and owner is not None:
            target = self.spec_manager.note_guard_failure(
                owner, guard_id, observed
            )
        if target is not None and target is not owner:
            continuation = self._dispatch_continuation(guard_id, frame, target)
            if continuation is not None:
                if tel.enabled:
                    tel.event(EV.SPEC_DISPATCH, guard=guard_id,
                              target=target.function.name,
                              observed=repr(observed))
                    tel.event(EV.DEOPT_EXIT, guard=guard_id,
                              target=target.function.name, mode="dispatch")
                elif metrics is not None:
                    metrics.inc(EV.SPEC_DISPATCH)
                    metrics.inc(EV.DEOPT_EXIT)
                if metrics is not None:
                    metrics.record_time(
                        EV.DEOPT_TRANSITION,
                        time.perf_counter() - transition_start)
                return continuation(*lives)

        continuation = self._baseline_continuation(guard_id, frame)
        if tel.enabled:
            tel.event(EV.DEOPT_EXIT, guard=guard_id,
                      target=frame.baseline.name, mode="baseline")
        elif metrics is not None:
            metrics.inc(EV.DEOPT_EXIT)
        if metrics is not None:
            metrics.record_time(EV.DEOPT_TRANSITION,
                                time.perf_counter() - transition_start)
        return continuation(*lives)

    def external_exit(self, key: tuple, build: Callable, *,
                      guard: str, function: str):
        """Deopt-exit for guard mechanisms living outside the speculation
        pass (e.g. McVM's feval handle guard): count the failure, emit
        the ``deopt.*`` events, and return the continuation produced by
        ``build()`` — cached under ``key`` so repeated failures at the
        same site pay only a lookup."""
        self.deopt_count += 1
        tel = self.telemetry
        metrics = getattr(self.engine, "metrics", None)
        if tel.enabled:
            tel.event(EV.DEOPT_GUARD_FAIL, guard=guard, function=function)
        elif metrics is not None:
            metrics.inc(EV.DEOPT_GUARD_FAIL)
        cached = self._continuations.get(key)
        if cached is None:
            cached = build()
            self._continuations[key] = cached
        if tel.enabled:
            tel.event(EV.DEOPT_EXIT, guard=guard, target=function,
                      mode="external")
        elif metrics is not None:
            metrics.inc(EV.DEOPT_EXIT)
        return cached

    # -- continuation construction ---------------------------------------------

    def _baseline_continuation(self, guard_id: str,
                               frame: FrameState) -> Callable:
        """Continuation resuming the unspecialized baseline at the
        guard's landing block (identity state mapping — the captured
        operands ARE the baseline live set)."""
        key = (guard_id, frame.baseline.name)
        cached = self._continuations.get(key)
        if cached is not None:
            return cached
        tel = self.telemetry
        with tel.span(EV.DEOPT_CONTINUATION, guard=guard_id,
                      target=frame.baseline.name, live=frame.state_size):
            cont = generate_continuation(
                frame.baseline, frame.landing, frame.live_values,
                frame.baseline_mapping(),
                name=f"{frame.baseline.name}.deopt",
                module=frame.baseline.module, telemetry=tel,
                am=self.engine.analysis,
            )
        cont.attributes["deopt.guard"] = guard_id
        compiled = compile_function(cont, self.engine)
        self._continuations[key] = compiled
        return compiled

    def _dispatch_continuation(self, guard_id: str, frame: FrameState,
                               target: SpecializedVersion
                               ) -> Optional[Callable]:
        """Specialized continuation entering ``target`` mid-flight, or
        None when the mapping cannot be derived (landing folded away,
        value provenance lost) — the caller then falls back to the
        baseline continuation."""
        key = (guard_id, target.function.name)
        cached = self._continuations.get(key)
        if cached is not None:
            return cached
        landing = target.vmap.get(frame.landing)
        if landing is None or landing.parent is not target.function:
            return None
        tel = self.telemetry
        try:
            mapping = derive_state_mapping(
                frame.live_values, target.vmap, target.function, landing
            )
            with tel.span(EV.DEOPT_CONTINUATION, guard=guard_id,
                          target=target.function.name):
                cont = generate_continuation(
                    target.function, landing, frame.live_values, mapping,
                    name=f"{target.function.name}.cont",
                    module=target.function.module, telemetry=tel,
                    am=self.engine.analysis,
                )
        except (AutoStateError, OSRError):
            return None
        cont.attributes["deopt.guard"] = guard_id
        compiled = compile_function(cont, self.engine)
        self._continuations[key] = compiled
        return compiled

    # -- invalidation ----------------------------------------------------------

    def invalidate_function(self, func: Function) -> None:
        """Drop cached continuations targeting ``func`` (its body or its
        baseline was rewritten)."""
        self._continuations = {
            key: cont for key, cont in self._continuations.items()
            if key[1] != func.name
        }
