"""The speculation manager: policy above the deopt machinery.

Owns the per-baseline speculation state for one engine: which specialized
versions exist, which one is *active* (dispatched to at call boundaries),
how many respecializations have been spent, and whether the function has
been pinned to baseline by the thrash limit.

Policy, per the Deoptless playbook:

* after tier-up, a function whose argument feedback is monomorphic gets
  a guarded specialization (``spec.specialize``);
* a guard failure whose observed value matches a *sibling* version
  dispatches there (``spec.dispatch``), and a persistent streak of such
  failures re-points the call boundary at that sibling;
* a streak of failures with a *new* stable value earns a fresh
  specialization (``spec.respecialize``) — until the thrash limit, after
  which the function is pinned to baseline (``spec.pinned``) and
  speculation stops burning compile time on it.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..ir.function import Function
from ..obs import events as EV
from ..vm.jit import compile_function
from .deopt import DeoptManager
from .speculate import SpeculationError, SpecializedVersion, specialize_function

#: consecutive same-value failures before the dispatcher re-points or a
#: new specialization is built
DEFAULT_STREAK_THRESHOLD = 2

#: respecializations of one baseline before it is pinned to baseline
DEFAULT_THRASH_LIMIT = 3


class SpecState:
    """Speculation bookkeeping for one baseline function."""

    __slots__ = ("baseline", "versions", "active", "active_version",
                 "pinned", "respec_count", "last_observed", "streak")

    def __init__(self, baseline: Function):
        self.baseline = baseline
        #: (arg_index, value) -> version
        self.versions: Dict[Tuple[int, object], SpecializedVersion] = {}
        #: compiled callable of the active version (the call-boundary
        #: fast path), or None while running baseline
        self.active: Optional[Callable] = None
        self.active_version: Optional[SpecializedVersion] = None
        self.pinned = False
        self.respec_count = 0
        self.last_observed: Optional[Tuple[int, object]] = None
        self.streak = 0


class SpeculationManager:
    """Creates, dispatches among, and retires specialized versions."""

    def __init__(self, engine, deopt: DeoptManager,
                 thrash_limit: int = DEFAULT_THRASH_LIMIT,
                 streak_threshold: int = DEFAULT_STREAK_THRESHOLD,
                 min_samples: int = 4, min_ratio: float = 0.95):
        self.engine = engine
        self.deopt = deopt
        deopt.spec_manager = self
        self.thrash_limit = thrash_limit
        self.streak_threshold = streak_threshold
        self.min_samples = min_samples
        self.min_ratio = min_ratio
        self._states: Dict[str, SpecState] = {}

    def state_for(self, func: Function) -> SpecState:
        state = self._states.get(func.name)
        if state is None:
            state = SpecState(func)
            self._states[func.name] = state
        return state

    # -- creating versions -----------------------------------------------------

    def maybe_specialize(self, func: Function, profile) -> Optional[
            SpecializedVersion]:
        """Specialize ``func`` if its argument feedback is monomorphic.

        Called by the speculative dispatcher once the function is
        promoted; a no-op while pinned, already speculating, or while
        the feedback is still polymorphic."""
        state = self.state_for(func)
        if state.pinned or state.active is not None:
            return None
        stable = profile.stable_argument(self.min_samples, self.min_ratio)
        if stable is None:
            return None
        arg_index, value = stable
        key = (arg_index, value)
        version = state.versions.get(key)
        if version is None:
            version = self._build_version(state, arg_index, value)
            if version is None:
                return None
        self._activate(state, version)
        return version

    def _build_version(self, state: SpecState, arg_index: int, value
                       ) -> Optional[SpecializedVersion]:
        engine = self.engine
        try:
            version = specialize_function(
                state.baseline, arg_index, value,
                module=engine.module, telemetry=engine.telemetry,
                am=engine.analysis,
            )
        except SpeculationError:
            return None
        state.versions[(arg_index, value)] = version
        self.deopt.register_version(version)
        # rewriting the baseline must cascade to every version guarding it
        engine.add_invalidation_dependency(state.baseline, version.function)
        return version

    def _activate(self, state: SpecState, version: SpecializedVersion) -> None:
        state.active_version = version
        state.active = compile_function(version.function, self.engine)

    def refresh_active(self, version: SpecializedVersion) -> None:
        """Re-materialize the active callable after the version's body
        changed (e.g. a guard was armed for forced failure)."""
        state = self._states.get(version.baseline.name)
        if state is not None and state.active_version is version:
            state.active = compile_function(version.function, self.engine)

    # -- failure policy ---------------------------------------------------------

    def note_guard_failure(self, owner: SpecializedVersion, guard_id: str,
                           observed) -> Optional[SpecializedVersion]:
        """Record a guard failure; returns a sibling version to dispatch
        the exit into, or None to resume the baseline."""
        state = self._states.get(owner.baseline.name)
        if state is None or state.pinned:
            return None
        if type(observed) not in (int, float):
            return None
        key = (owner.arg_index, observed)
        if state.last_observed == key:
            state.streak += 1
        else:
            state.last_observed = key
            state.streak = 1

        sibling = state.versions.get(key)
        if sibling is not None and sibling is not owner:
            # known profile: dispatch there; a persistent streak also
            # re-points the call boundary
            if (state.streak >= self.streak_threshold
                    and state.active_version is not sibling):
                self._activate(state, sibling)
            return sibling

        if sibling is None and state.streak >= self.streak_threshold:
            # new stable profile: earn another specialized continuation —
            # unless the thrash limit says this function churns profiles
            # faster than speculation pays off
            tel = self.engine.telemetry
            if state.respec_count >= self.thrash_limit:
                self._pin(state)
                return None
            state.respec_count += 1
            if tel.enabled:
                tel.event(EV.SPEC_RESPECIALIZE,
                          function=state.baseline.name,
                          arg_index=owner.arg_index,
                          observed=repr(observed),
                          respec_count=state.respec_count)
            else:
                self.engine.metrics.inc(EV.SPEC_RESPECIALIZE)
            version = self._build_version(state, owner.arg_index, observed)
            if version is not None:
                self._activate(state, version)
                state.streak = 0
                return version
        return None

    def _pin(self, state: SpecState) -> None:
        state.pinned = True
        state.active = None
        state.active_version = None
        tel = self.engine.telemetry
        if tel.enabled:
            tel.event(EV.SPEC_PINNED, function=state.baseline.name,
                      respec_count=state.respec_count)
        else:
            self.engine.metrics.inc(EV.SPEC_PINNED)

    # -- invalidation -----------------------------------------------------------

    def on_invalidate(self, func: Function) -> None:
        """The baseline's body was rewritten: every version speculated
        from it is stale.  Drop them (frames, continuations, active
        pointer); feedback restarts from scratch."""
        state = self._states.get(func.name)
        if state is None:
            return
        for version in state.versions.values():
            self.deopt.forget_version(version)
            self.deopt.invalidate_function(version.function)
        self.deopt.invalidate_function(func)
        state.versions.clear()
        state.active = None
        state.active_version = None
        state.last_observed = None
        state.streak = 0

    def stats(self) -> Dict[str, Dict[str, object]]:
        return {
            name: {
                "versions": len(state.versions),
                "active": (state.active_version.function.name
                           if state.active_version is not None else None),
                "pinned": state.pinned,
                "respec_count": state.respec_count,
            }
            for name, state in self._states.items()
        }
