"""The speculation pass: clone + specialize under explicit guards.

Driven by :class:`~repro.vm.profile.ValueFeedback`: when a function's
profile says an argument slot is monomorphic, the pass clones the
function, folds the argument to the observed constant, and protects the
assumption with ``guard`` pseudo-instructions — one at the entry block
and one at every loop header, so a deopt can be taken both at the call
boundary and mid-loop (the OSR-exit sites of the paper's Figure 3,
repurposed for exits instead of entries).

Each guard captures the baseline's live set at its site (mapped through
the clone's value map) plus the speculated argument, and owns a
:class:`~repro.spec.framestate.FrameState` telling the deopt manager how
to resume the baseline from exactly that state.  After guard insertion
the speculative body is optimized (constant folding, CFG simplification,
DCE) — this is where the speedup comes from: branches on the speculated
value fold away, and the guards keep the result semantically honest.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.manager import resolve_manager
from ..ir.builder import IRBuilder
from ..ir.function import BasicBlock, Function, Module
from ..ir.instructions import GuardInst
from ..ir.types import FloatType, IntType
from ..ir.values import ConstantFloat, ConstantInt, Value
from ..ir.verifier import verify_function
from ..obs import events as EV
from ..obs.telemetry import ambient as ambient_telemetry
from ..transform import eliminate_dead_code, fold_constants, simplify_cfg
from ..transform.clone import ValueMap, clone_function
from .framestate import FrameState


class SpeculationError(Exception):
    """Raised when a function cannot be specialized."""


class SpecializedVersion:
    """One speculative clone of a baseline function."""

    __slots__ = ("baseline", "function", "arg_index", "value", "guards",
                 "vmap")

    def __init__(self, baseline: Function, function: Function,
                 arg_index: int, value, guards: Dict[str, FrameState],
                 vmap: ValueMap):
        self.baseline = baseline
        self.function = function
        self.arg_index = arg_index
        #: the speculated constant for argument ``arg_index``
        self.value = value
        #: guard id -> frame state, for every guard in ``function``
        self.guards = guards
        #: baseline -> clone value map (kept for dispatched continuations)
        self.vmap = vmap

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<SpecializedVersion @{self.function.name} of "
            f"@{self.baseline.name} arg{self.arg_index}={self.value!r}>"
        )


def _speculation_constant(arg_type, value):
    if isinstance(arg_type, IntType) and type(value) is int:
        return ConstantInt(arg_type, arg_type.wrap(value))
    if isinstance(arg_type, FloatType) and type(value) is float:
        return ConstantFloat(arg_type, value)
    return None


def specialize_function(
    baseline: Function,
    arg_index: int,
    value,
    module: Optional[Module] = None,
    optimize: bool = True,
    telemetry=None,
    am=None,
) -> SpecializedVersion:
    """Build a guarded specialization of ``baseline`` for
    ``args[arg_index] == value``.

    Returns the :class:`SpecializedVersion` holding the new function and
    its per-guard frame states.  The baseline is left untouched — the
    engine keeps dispatching through it and only routes calls to the
    specialization while its guards hold; since the baseline never
    changes, its liveness and loop info (pulled from ``am``, defaulting
    to the process-wide manager) stay cached across respecializations.
    """
    if baseline.is_declaration:
        raise SpeculationError(f"cannot specialize declaration @{baseline.name}")
    if not 0 <= arg_index < len(baseline.args):
        raise SpeculationError(
            f"@{baseline.name} has no argument {arg_index}"
        )
    arg = baseline.args[arg_index]
    const = _speculation_constant(arg.type, value)
    if const is None:
        raise SpeculationError(
            f"cannot speculate {value!r} for argument of type {arg.type}"
        )
    target_module = module if module is not None else baseline.module
    if target_module is None:
        raise SpeculationError("baseline has no module and none was provided")

    tel = telemetry if telemetry is not None else ambient_telemetry()
    with tel.span(EV.SPEC_SPECIALIZE, function=baseline.name,
                  arg_index=arg_index, value=repr(value)):
        return _specialize(baseline, arg_index, const, value,
                           target_module, optimize, resolve_manager(am), tel)


def _specialize(baseline: Function, arg_index: int, const, value,
                module: Module, optimize: bool, am,
                telemetry=None) -> SpecializedVersion:
    arg = baseline.args[arg_index]
    baseline.assign_names()
    liveness = am.liveness(baseline)

    # guard sites: function entry + every loop header, deduplicated in
    # layout order — one boundary check plus one mid-flight exit per loop
    sites: List[BasicBlock] = [baseline.entry]
    for loop in am.loop_info(baseline).loops:
        if loop.header not in sites:
            sites.append(loop.header)

    spec_name = module.unique_name(f"{baseline.name}.spec")
    clone, vmap = clone_function(baseline, spec_name, module)
    clone.attributes["spec.of"] = baseline.name
    clone.attributes["spec.arg"] = str(arg_index)
    spec_arg = vmap[arg]

    guards: Dict[str, FrameState] = {}
    protected: set = set()  # ids of instructions the RAUW must skip
    for site in sites:
        lives_base = liveness.live_at_block_entry(site)
        guard_id = f"{spec_name}#{site.name}"
        clone_site: BasicBlock = vmap[site]
        builder = IRBuilder()
        builder.position_before(
            clone_site.instructions[clone_site.first_non_phi_index]
        )
        if isinstance(arg.type, FloatType):
            cond = builder.fcmp("oeq", spec_arg, const, "spec.check")
        else:
            cond = builder.icmp("eq", spec_arg, const, "spec.check")
        # the speculated argument is captured LAST so the deopt manager
        # can read the observed (guard-failing) value as lives[-1]
        capture = [vmap.lookup(v) for v in lives_base] + [spec_arg]
        guard = builder.guard(cond, guard_id, capture)
        protected.add(id(cond))
        protected.add(id(guard))
        guards[guard_id] = FrameState(
            guard_id, baseline, site, list(lives_base) + [arg], arg_index
        )
        if telemetry is not None and telemetry.enabled:
            telemetry.event(
                EV.OSR_STATE_SIZE, function=clone.name, kind="guard",
                guard=guard_id, live=len(capture),
            )

    # selective RAUW: fold the speculated argument to the constant
    # everywhere EXCEPT the guard machinery itself — the condition must
    # keep comparing the real runtime value, and the capture must keep
    # transferring it
    for use in list(spec_arg.uses):
        if id(use.user) not in protected:
            use.user.set_operand(use.index, const)

    if optimize:
        fold_constants(clone)
        simplify_cfg(clone)
        eliminate_dead_code(clone)
        # optimization may have deleted guard sites that became
        # unreachable under the speculated value; drop their records
        remaining = {
            inst.guard_id
            for block in clone.blocks
            for inst in block.instructions
            if isinstance(inst, GuardInst)
        }
        guards = {gid: fs for gid, fs in guards.items() if gid in remaining}

    clone.assign_names()
    verify_function(clone)
    return SpecializedVersion(baseline, clone, arg_index, value, guards, vmap)
